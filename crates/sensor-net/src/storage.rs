//! Durable per-sensor storage — the paper's Figure 1 architecture keeps
//! "a separate file … for each sensor that is in contact with the base
//! station". Historically that was one flat log per sensor; recovery
//! replayed the entire stream, so the recovery wall grew linearly with
//! history length. This module replaces the flat log with a *segmented
//! store* whose recovery cost is bounded by one segment plus one
//! checkpoint regardless of history length (DESIGN.md §3d):
//!
//! * **Segments** (`sensor-<node>/seg-<ordinal>.sbrseg`): fixed-size
//!   append-only files of CRC-framed records
//!   (`u32 LE len ∥ payload ∥ u32 LE crc32(len ∥ payload)`, the wire-v2
//!   CRC-32/IEEE). A segment that reaches its size budget is *sealed*
//!   with a footer carrying its record count, payload byte total, and a
//!   footer CRC; sealed segments are immutable.
//! * **Checkpoints** (`sensor-<node>/ck-<covered>.sbrck`): written after
//!   a seal, each captures the decoder snapshot (epoch, next expected
//!   seq, mirrored base signal) at that seal boundary plus the segment
//!   index of everything it covers. Checkpoints are written to a `.tmp`
//!   file and renamed into place, so a crash mid-checkpoint leaves at
//!   worst a stray `.tmp` that [`scan`] removes.
//! * **Recovery** ([`scan`]): reads the newest checkpoint and walks only
//!   the segments *after* it, tolerating a torn tail in the final
//!   (active) segment exactly like the old flat log: complete records
//!   are kept, the partial tail is truncated and reported. Everything
//!   older stays cold on disk until [`hydrate`] is asked for it.
//! * **Compaction** ([`compact`]): a resync frame carries a complete
//!   base-signal snapshot in-stream, so checkpoints whose boundary lies
//!   at or before the newest resync are redundant for resuming the
//!   decoder — compaction deletes those checkpoint *files* (never
//!   segment data, so recovered station state is byte-identical with
//!   compaction on or off).
//!
//! Continuity is checked the same way the base station's receive path
//! does: data frames must carry the current epoch and the next sequence
//! number; a resync frame must advance the epoch and resets the expected
//! sequence to its own. A store that violates either was corrupted at
//! rest and recovery reports [`SbrError::InconsistentState`]; framing or
//! CRC damage reports [`SbrError::Corrupt`] naming the damaged file.
//!
//! The legacy single-file stream format (`u32 LE len ∥ frame`, no CRC)
//! survives as [`StreamWriter`]/[`recover_stream`] — it is the `.sbr`
//! interchange format `sbr compress`/`sbr decompress` speak.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;
use sbr_core::{codec, BaseSignal, SbrError};

use crate::NodeId;

// --- on-disk format constants (pinned by tests/storage_compat.rs and the
// --- repolint wire-drift rule; spell sizes as sums so the lexer can
// --- evaluate them) ---

/// Segment header magic, `"SBSG"` in LE byte order.
pub const SEG_MAGIC: u32 = 0x5342_5347;
/// Segment format version.
pub const SEG_VERSION: u16 = 1;
/// Segment header size: magic u32 + version u16 + ordinal u32 +
/// first_record u64 + header CRC u32.
pub const SEG_HEADER: usize = 4 + 2 + 4 + 8 + 4;
/// Per-record framing overhead: u32 length prefix + u32 record CRC.
pub const RECORD_OVERHEAD: usize = 4 + 4;
/// Segment footer magic, `"SBSF"` in LE byte order. Written *first* in
/// the footer so a reader can distinguish "sealed" from "next record".
pub const SEG_FOOTER_MAGIC: u32 = 0x5342_5346;
/// Segment footer size: magic u32 + record_count u32 + payload_bytes u64
/// + footer CRC u32.
pub const SEG_FOOTER: usize = 4 + 4 + 8 + 4;
/// Checkpoint header magic, `"SBCK"` in LE byte order.
pub const CK_MAGIC: u32 = 0x5342_434B;
/// Checkpoint format version.
pub const CK_VERSION: u16 = 1;
/// Checkpoint fixed header size: magic u32 + version u16 + covered u32 +
/// records u64 + payload_bytes u64 + epoch u32 + next_seq u64 +
/// resync flag u8 + resync_at u64 + index_len u32.
pub const CK_HEADER: usize = 4 + 2 + 4 + 8 + 8 + 4 + 8 + 1 + 8 + 4;
/// Per-sealed-segment checkpoint index entry: ordinal u32 + records u32 +
/// payload_bytes u64.
pub const CK_INDEX_ENTRY: usize = 4 + 4 + 8;
/// Default segment size budget (bytes) before a seal.
pub const DEFAULT_SEGMENT_BYTES: u64 = 64 * 1024;

/// Directory holding one sensor's segments and checkpoints.
pub fn sensor_dir(dir: &Path, node: NodeId) -> PathBuf {
    dir.join(format!("sensor-{node}"))
}

fn segment_path(sdir: &Path, ordinal: u32) -> PathBuf {
    sdir.join(format!("seg-{ordinal:08}.sbrseg"))
}

fn checkpoint_path(sdir: &Path, covered: u32) -> PathBuf {
    sdir.join(format!("ck-{covered:08}.sbrck"))
}

fn io_corrupt(path: &Path, op: &str, e: std::io::Error) -> SbrError {
    SbrError::Corrupt(format!("{op} {}: {e}", path.display()))
}

// --- bounded byte cursor (keeps every read in-bounds without indexing) ---

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn pos(&self) -> usize {
        self.pos
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let s = self.buf.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).and_then(|s| s.first().copied())
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2)
            .and_then(|s| <[u8; 2]>::try_from(s).ok())
            .map(u16::from_le_bytes)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .and_then(|s| <[u8; 4]>::try_from(s).ok())
            .map(u32::from_le_bytes)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .and_then(|s| <[u8; 8]>::try_from(s).ok())
            .map(u64::from_le_bytes)
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }
}

// --- continuity checking shared by every walk ---

/// Decode-level continuity state threaded through a store walk; mirrors
/// the base station's receive-path classification.
#[derive(Debug, Clone)]
struct Continuity {
    epoch: u32,
    next_seq: u64,
    records: u64,
    resync_at: Option<u64>,
}

impl Continuity {
    fn fresh() -> Self {
        Continuity {
            epoch: 0,
            next_seq: 0,
            records: 0,
            resync_at: None,
        }
    }

    fn from_checkpoint(ck: &LoadedCheckpoint) -> Self {
        Continuity {
            epoch: ck.state.epoch,
            next_seq: ck.state.next_seq,
            records: ck.state.records,
            resync_at: ck.state.resync_at,
        }
    }

    /// Validate one record payload as the next frame of the stream.
    fn admit(&mut self, payload: &[u8], label: &Path) -> Result<sbr_core::Transmission, SbrError> {
        let mut rest = payload;
        let parsed = codec::decode_any(&mut rest)?;
        if !rest.is_empty() {
            return Err(SbrError::Corrupt(format!(
                "record {} in {} has {} trailing bytes",
                self.records,
                label.display(),
                rest.len()
            )));
        }
        match parsed.kind {
            sbr_core::FrameKind::Data => {
                if parsed.epoch != self.epoch || parsed.tx.seq != self.next_seq {
                    return Err(SbrError::InconsistentState(format!(
                        "{} skips from epoch {} seq {} to epoch {} seq {}",
                        label.display(),
                        self.epoch,
                        self.next_seq,
                        parsed.epoch,
                        parsed.tx.seq
                    )));
                }
                self.next_seq += 1;
            }
            sbr_core::FrameKind::Resync => {
                if parsed.epoch <= self.epoch {
                    return Err(SbrError::InconsistentState(format!(
                        "{}: resync at record {} regresses epoch {} to {}",
                        label.display(),
                        self.records,
                        self.epoch,
                        parsed.epoch
                    )));
                }
                self.epoch = parsed.epoch;
                self.next_seq = parsed.tx.seq + 1;
                self.resync_at = Some(self.records);
            }
        }
        self.records += 1;
        Ok(parsed.tx)
    }
}

// --- segment encode / decode ---

fn encode_segment_header(ordinal: u32, first_record: u64) -> Vec<u8> {
    let mut h = Vec::with_capacity(SEG_HEADER);
    h.extend_from_slice(&SEG_MAGIC.to_le_bytes());
    h.extend_from_slice(&SEG_VERSION.to_le_bytes());
    h.extend_from_slice(&ordinal.to_le_bytes());
    h.extend_from_slice(&first_record.to_le_bytes());
    let crc = codec::crc32(&h);
    h.extend_from_slice(&crc.to_le_bytes());
    h
}

fn encode_record(frame: &[u8]) -> Vec<u8> {
    let mut r = Vec::with_capacity(frame.len() + RECORD_OVERHEAD);
    // lint:allow(cast-truncation): append rejects frames at or above u32::MAX before encoding
    r.extend_from_slice(&(frame.len() as u32).to_le_bytes());
    r.extend_from_slice(frame);
    let crc = codec::crc32(&r);
    r.extend_from_slice(&crc.to_le_bytes());
    r
}

fn encode_segment_footer(records: u32, payload_bytes: u64) -> Vec<u8> {
    let mut f = Vec::with_capacity(SEG_FOOTER);
    f.extend_from_slice(&SEG_FOOTER_MAGIC.to_le_bytes());
    f.extend_from_slice(&records.to_le_bytes());
    f.extend_from_slice(&payload_bytes.to_le_bytes());
    let crc = codec::crc32(&f);
    f.extend_from_slice(&crc.to_le_bytes());
    f
}

/// Index entry for one sealed (immutable) segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SealedMeta {
    /// Segment ordinal (also its filename number).
    pub ordinal: u32,
    /// Records the segment holds.
    pub records: u32,
    /// Total payload bytes (frame bytes, excluding framing overhead).
    pub payload_bytes: u64,
}

struct WalkedSegment {
    payloads: Vec<Bytes>,
    payload_bytes: u64,
    sealed: bool,
    /// Bytes of the file consumed by valid content (header + records +
    /// footer when sealed) — the truncation point for a torn tail.
    consumed: usize,
    truncated: usize,
}

/// Walk one segment file's bytes, validating framing, record CRCs, and
/// stream continuity. `is_last` selects torn-tail tolerance (only the
/// final, possibly-active segment of a store may end mid-write).
fn walk_segment(
    raw: &[u8],
    path: &Path,
    ordinal: u32,
    cont: &mut Continuity,
    is_last: bool,
) -> Result<WalkedSegment, SbrError> {
    let mut c = Cursor::new(raw);
    let Some(header) = c.take(SEG_HEADER) else {
        if is_last {
            // Crash during segment creation: nothing durable yet.
            return Ok(WalkedSegment {
                payloads: Vec::new(),
                payload_bytes: 0,
                sealed: false,
                consumed: 0,
                truncated: raw.len(),
            });
        }
        return Err(SbrError::Corrupt(format!(
            "segment {} shorter than its header",
            path.display()
        )));
    };
    let mut h = Cursor::new(header);
    let magic = h.u32();
    let version = h.u16();
    let h_ordinal = h.u32();
    let first_record = h.u64();
    let h_crc = h.u32();
    let body_crc = header
        .get(..SEG_HEADER - 4)
        .map(codec::crc32)
        .unwrap_or_default();
    if magic != Some(SEG_MAGIC) || version != Some(SEG_VERSION) || h_crc != Some(body_crc) {
        return Err(SbrError::Corrupt(format!(
            "segment {} has a bad header",
            path.display()
        )));
    }
    if h_ordinal != Some(ordinal) || first_record != Some(cont.records) {
        return Err(SbrError::Corrupt(format!(
            "segment {} header claims ordinal {:?} first record {:?}, \
             expected ordinal {ordinal} first record {}",
            path.display(),
            h_ordinal,
            first_record,
            cont.records
        )));
    }

    let mut payloads = Vec::new();
    let mut payload_bytes = 0u64;
    loop {
        let record_start = c.pos();
        let mut peek = Cursor::new(raw.get(record_start..).unwrap_or_default());
        let Some(word) = peek.u32() else {
            // Ran out of bytes before a footer.
            if is_last {
                return Ok(WalkedSegment {
                    payloads,
                    payload_bytes,
                    sealed: false,
                    consumed: record_start,
                    truncated: raw.len() - record_start,
                });
            }
            return Err(SbrError::Corrupt(format!(
                "segment {} is not sealed",
                path.display()
            )));
        };
        if word == SEG_FOOTER_MAGIC {
            // Footer (possibly torn). A complete, valid footer seals the
            // segment; anything less is a torn seal on the last segment
            // and corruption anywhere else.
            let records = peek.u32();
            let pb = peek.u64();
            let f_crc = peek.u32();
            let body = raw.get(record_start..record_start + SEG_FOOTER - 4);
            let ok = match (records, pb, f_crc, body) {
                (Some(r), Some(p), Some(fc), Some(b)) => {
                    fc == codec::crc32(b)
                        && r as usize == payloads.len()
                        && p == payload_bytes
                        && record_start + SEG_FOOTER == raw.len()
                }
                _ => false,
            };
            if ok {
                return Ok(WalkedSegment {
                    payloads,
                    payload_bytes,
                    sealed: true,
                    consumed: raw.len(),
                    truncated: 0,
                });
            }
            if is_last && raw.len() < record_start + SEG_FOOTER {
                // Torn mid-seal: records are durable, the seal is not.
                return Ok(WalkedSegment {
                    payloads,
                    payload_bytes,
                    sealed: false,
                    consumed: record_start,
                    truncated: raw.len() - record_start,
                });
            }
            return Err(SbrError::Corrupt(format!(
                "segment {} has a bad footer",
                path.display()
            )));
        }
        // A record. The length word must land its body + CRC in-bounds.
        let len = word as usize;
        let framed = raw.get(record_start..record_start + 4 + len + 4);
        let Some(framed) = framed else {
            if is_last {
                return Ok(WalkedSegment {
                    payloads,
                    payload_bytes,
                    sealed: false,
                    consumed: record_start,
                    truncated: raw.len() - record_start,
                });
            }
            return Err(SbrError::Corrupt(format!(
                "segment {} record {} runs past end of file",
                path.display(),
                payloads.len()
            )));
        };
        let body = framed.get(..4 + len).unwrap_or_default();
        let stored_crc = framed
            .get(4 + len..)
            .and_then(|s| <[u8; 4]>::try_from(s).ok())
            .map(u32::from_le_bytes);
        if stored_crc != Some(codec::crc32(body)) {
            return Err(SbrError::Corrupt(format!(
                "segment {} record {} fails its CRC",
                path.display(),
                payloads.len()
            )));
        }
        let payload = body.get(4..).unwrap_or_default();
        cont.admit(payload, path)?;
        payloads.push(Bytes::copy_from_slice(payload));
        payload_bytes += len as u64; // lint:allow(cast-truncation): usize -> u64 widens
        let _ = c.take(4 + len + 4);
    }
}

// --- checkpoint encode / decode ---

/// Decoder snapshot captured by a checkpoint at a seal boundary.
#[derive(Debug, Clone)]
pub struct CheckpointState {
    /// Records covered (across all sealed segments up to the boundary).
    pub records: u64,
    /// Payload bytes covered.
    pub payload_bytes: u64,
    /// Decoder epoch at the boundary.
    pub epoch: u32,
    /// Next expected sequence number at the boundary.
    pub next_seq: u64,
    /// Record index (0-based, store-wide) of the newest resync frame at
    /// or before the boundary, if any.
    pub resync_at: Option<u64>,
    /// The mirrored base signal at the boundary (None before the first
    /// frame applied).
    pub base: Option<BaseSignal>,
}

/// A checkpoint read back from disk.
#[derive(Debug, Clone)]
pub struct LoadedCheckpoint {
    /// Number of sealed segments the checkpoint covers (segments
    /// `0..covered`); also its filename number.
    pub covered: u32,
    /// The decoder snapshot at the boundary.
    pub state: CheckpointState,
    /// Index of the covered sealed segments, in ordinal order.
    pub index: Vec<SealedMeta>,
}

fn encode_checkpoint(
    covered: u32,
    state: &CheckpointState,
    index: &[SealedMeta],
) -> Result<Vec<u8>, SbrError> {
    let mut b = Vec::with_capacity(CK_HEADER + index.len() * CK_INDEX_ENTRY + 64);
    b.extend_from_slice(&CK_MAGIC.to_le_bytes());
    b.extend_from_slice(&CK_VERSION.to_le_bytes());
    b.extend_from_slice(&covered.to_le_bytes());
    b.extend_from_slice(&state.records.to_le_bytes());
    b.extend_from_slice(&state.payload_bytes.to_le_bytes());
    b.extend_from_slice(&state.epoch.to_le_bytes());
    b.extend_from_slice(&state.next_seq.to_le_bytes());
    b.push(state.resync_at.is_some() as u8);
    b.extend_from_slice(&state.resync_at.unwrap_or(0).to_le_bytes());
    let index_len = u32::try_from(index.len())
        .map_err(|_| SbrError::Corrupt("checkpoint index length overflows u32".into()))?;
    b.extend_from_slice(&index_len.to_le_bytes());
    for m in index {
        b.extend_from_slice(&m.ordinal.to_le_bytes());
        b.extend_from_slice(&m.records.to_le_bytes());
        b.extend_from_slice(&m.payload_bytes.to_le_bytes());
    }
    match &state.base {
        None => b.push(0),
        Some(base) => {
            b.push(1);
            let (w, values, meta) = base.to_raw();
            let w = u32::try_from(w)
                .map_err(|_| SbrError::Corrupt("base width overflows u32".into()))?;
            let meta_len = u32::try_from(meta.len())
                .map_err(|_| SbrError::Corrupt("base meta length overflows u32".into()))?;
            b.extend_from_slice(&w.to_le_bytes());
            b.extend_from_slice(&meta_len.to_le_bytes());
            for v in values {
                b.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            for (use_count, inserted_at) in meta {
                b.extend_from_slice(&use_count.to_le_bytes());
                b.extend_from_slice(&inserted_at.to_le_bytes());
            }
        }
    }
    let crc = codec::crc32(&b);
    b.extend_from_slice(&crc.to_le_bytes());
    Ok(b)
}

fn decode_checkpoint(raw: &[u8], path: &Path) -> Result<LoadedCheckpoint, SbrError> {
    let bad = |what: &str| SbrError::Corrupt(format!("checkpoint {}: {what}", path.display()));
    let body_len = raw.len().checked_sub(4).ok_or_else(|| bad("too short"))?;
    let body = raw.get(..body_len).ok_or_else(|| bad("too short"))?;
    let stored = raw
        .get(body_len..)
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
        .map(u32::from_le_bytes)
        .ok_or_else(|| bad("too short"))?;
    if stored != codec::crc32(body) {
        return Err(bad("fails its CRC"));
    }
    let mut c = Cursor::new(body);
    if c.u32() != Some(CK_MAGIC) || c.u16() != Some(CK_VERSION) {
        return Err(bad("bad magic or version"));
    }
    let covered = c.u32().ok_or_else(|| bad("truncated header"))?;
    let records = c.u64().ok_or_else(|| bad("truncated header"))?;
    let payload_bytes = c.u64().ok_or_else(|| bad("truncated header"))?;
    let epoch = c.u32().ok_or_else(|| bad("truncated header"))?;
    let next_seq = c.u64().ok_or_else(|| bad("truncated header"))?;
    let resync_flag = c.u8().ok_or_else(|| bad("truncated header"))?;
    let resync_raw = c.u64().ok_or_else(|| bad("truncated header"))?;
    let index_len = c.u32().ok_or_else(|| bad("truncated header"))? as usize;
    // lint:allow(cast-truncation): u32 -> usize widens on this 64-bit target
    if index_len != covered as usize {
        return Err(bad("index length disagrees with covered count"));
    }
    let mut index = Vec::with_capacity(index_len);
    let mut sum_records = 0u64;
    let mut sum_payload = 0u64;
    for i in 0..index_len {
        let ordinal = c.u32().ok_or_else(|| bad("truncated index"))?;
        let seg_records = c.u32().ok_or_else(|| bad("truncated index"))?;
        let seg_payload = c.u64().ok_or_else(|| bad("truncated index"))?;
        // lint:allow(cast-truncation): u32 -> usize widens on this 64-bit target
        if ordinal as usize != i {
            return Err(bad("index ordinals out of order"));
        }
        sum_records += seg_records as u64; // lint:allow(cast-truncation): u32 -> u64 widens
        sum_payload += seg_payload;
        index.push(SealedMeta {
            ordinal,
            records: seg_records,
            payload_bytes: seg_payload,
        });
    }
    if sum_records != records || sum_payload != payload_bytes {
        return Err(bad("index totals disagree with header totals"));
    }
    let base = match c.u8() {
        Some(0) => None,
        Some(1) => {
            let w = c.u32().ok_or_else(|| bad("truncated base signal"))? as usize;
            let slots = c.u32().ok_or_else(|| bad("truncated base signal"))? as usize;
            let n = w.checked_mul(slots).ok_or_else(|| bad("base too large"))?;
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(c.f64().ok_or_else(|| bad("truncated base signal"))?);
            }
            let mut meta = Vec::with_capacity(slots);
            for _ in 0..slots {
                let use_count = c.u64().ok_or_else(|| bad("truncated base signal"))?;
                let inserted_at = c.u64().ok_or_else(|| bad("truncated base signal"))?;
                meta.push((use_count, inserted_at));
            }
            Some(BaseSignal::from_raw(w, values, meta)?)
        }
        _ => return Err(bad("bad base-signal flag")),
    };
    if c.remaining() != 0 {
        return Err(bad("trailing bytes"));
    }
    Ok(LoadedCheckpoint {
        covered,
        state: CheckpointState {
            records,
            payload_bytes,
            epoch,
            next_seq,
            resync_at: (resync_flag == 1).then_some(resync_raw),
            base,
        },
        index,
    })
}

fn load_checkpoint(path: &Path) -> Result<LoadedCheckpoint, SbrError> {
    let mut raw = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut raw))
        .map_err(|e| io_corrupt(path, "cannot read checkpoint", e))?;
    decode_checkpoint(&raw, path)
}

// --- scanning (recovery entry point) ---

/// Metadata for the in-progress (unsealed) segment found by a scan.
#[derive(Debug, Clone, Copy)]
pub struct ActiveMeta {
    /// The active segment's ordinal.
    pub ordinal: u32,
    /// Records it currently holds.
    pub records: u32,
    /// Payload bytes it currently holds.
    pub payload_bytes: u64,
    /// Valid file length (after torn-tail truncation).
    pub file_len: u64,
}

/// Result of scanning a sensor's store for recovery: the newest
/// checkpoint (if any), the *tail* — every record after that checkpoint's
/// boundary — and the segment index. Scanning reads only the tail
/// segments; everything the checkpoint covers stays cold until
/// [`hydrate`].
#[derive(Debug)]
pub struct ScannedStore {
    /// Newest checkpoint on disk, already validated.
    pub checkpoint: Option<LoadedCheckpoint>,
    /// Raw frames after the checkpoint boundary, in append order — the
    /// records recovery must replay.
    pub tail_frames: Vec<Bytes>,
    /// Full sealed-segment index (covered segments from the checkpoint,
    /// plus any sealed after it).
    pub sealed: Vec<SealedMeta>,
    /// The unsealed active segment, if one exists.
    pub active: Option<ActiveMeta>,
    /// Total records in the store (checkpoint-covered + tail).
    pub records_total: u64,
    /// Total payload bytes in the store.
    pub payload_total: u64,
    /// Bytes of torn tail truncated from the active segment.
    pub truncated_tail: usize,
    /// Decoder epoch after the tail.
    pub epoch: u32,
    /// Next expected sequence number after the tail.
    pub next_seq: u64,
    /// Store-wide record index of the newest resync frame, if any.
    pub resync_at: Option<u64>,
}

impl ScannedStore {
    fn empty() -> Self {
        ScannedStore {
            checkpoint: None,
            tail_frames: Vec::new(),
            sealed: Vec::new(),
            active: None,
            records_total: 0,
            payload_total: 0,
            truncated_tail: 0,
            epoch: 0,
            next_seq: 0,
            resync_at: None,
        }
    }
}

/// List the segment ordinals and checkpoint numbers under a sensor dir,
/// removing stray `.tmp` files (a crash mid-checkpoint) along the way.
fn list_store(sdir: &Path) -> Result<(Vec<u32>, Vec<u32>), SbrError> {
    let mut segs = Vec::new();
    let mut cks = Vec::new();
    let entries =
        std::fs::read_dir(sdir).map_err(|e| io_corrupt(sdir, "cannot list store dir", e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_corrupt(sdir, "cannot list store dir", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.ends_with(".tmp") {
            let _ = std::fs::remove_file(entry.path());
            continue;
        }
        if let Some(num) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".sbrseg"))
            .and_then(|s| s.parse::<u32>().ok())
        {
            segs.push(num);
        } else if let Some(num) = name
            .strip_prefix("ck-")
            .and_then(|s| s.strip_suffix(".sbrck"))
            .and_then(|s| s.parse::<u32>().ok())
        {
            cks.push(num);
        }
    }
    segs.sort_unstable();
    cks.sort_unstable();
    Ok((segs, cks))
}

fn read_segment_raw(path: &Path) -> Result<Vec<u8>, SbrError> {
    let mut raw = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut raw))
        .map_err(|e| io_corrupt(path, "cannot read segment", e))?;
    Ok(raw)
}

/// Scan a sensor's segmented store: load the newest checkpoint, walk the
/// tail segments after it (validating framing, CRCs, and continuity),
/// truncate any torn tail in the active segment, and return everything a
/// writer or a base station needs to resume. Cost is bounded by the tail
/// — at most the segments sealed since the last checkpoint plus the
/// active one — regardless of how long the history is.
pub fn scan(dir: &Path, node: NodeId) -> Result<ScannedStore, SbrError> {
    let sdir = sensor_dir(dir, node);
    if !sdir.exists() {
        return Ok(ScannedStore::empty());
    }
    let (segs, cks) = list_store(&sdir)?;

    let checkpoint = match cks.last() {
        None => None,
        Some(&covered) => Some(load_checkpoint(&checkpoint_path(&sdir, covered))?),
    };
    let start = checkpoint.as_ref().map(|ck| ck.covered).unwrap_or(0);

    // Segments must be contiguous from 0: compaction removes checkpoint
    // files only, never segment data.
    for (i, &ord) in segs.iter().enumerate() {
        // lint:allow(cast-truncation): u32 -> usize widens on this 64-bit target
        if ord as usize != i {
            return Err(SbrError::Corrupt(format!(
                "store {} is missing segment {i}",
                sdir.display()
            )));
        }
    }
    let max_seg = match segs.last() {
        Some(&m) => m,
        None => {
            // No segments at all: only legal when nothing was covered.
            if start != 0 {
                return Err(SbrError::Corrupt(format!(
                    "store {} has a checkpoint covering {start} segments but no segments",
                    sdir.display()
                )));
            }
            return Ok(ScannedStore::empty());
        }
    };
    if (max_seg + 1) < start {
        return Err(SbrError::Corrupt(format!(
            "store {} has a checkpoint covering {start} segments but only {} exist",
            sdir.display(),
            max_seg + 1
        )));
    }

    let mut cont = match &checkpoint {
        Some(ck) => Continuity::from_checkpoint(ck),
        None => Continuity::fresh(),
    };
    let mut sealed: Vec<SealedMeta> = checkpoint
        .as_ref()
        .map(|ck| ck.index.clone())
        .unwrap_or_default();
    let mut payload_total = checkpoint
        .as_ref()
        .map(|ck| ck.state.payload_bytes)
        .unwrap_or(0);
    let mut tail_frames = Vec::new();
    let mut active = None;
    let mut truncated_tail = 0usize;

    for ordinal in start..=max_seg {
        let path = segment_path(&sdir, ordinal);
        let raw = read_segment_raw(&path)?;
        let is_last = ordinal == max_seg;
        let walked = walk_segment(&raw, &path, ordinal, &mut cont, is_last)?;
        let records = walked.record_count();
        payload_total += walked.payload_bytes;
        if walked.sealed {
            sealed.push(SealedMeta {
                ordinal,
                records,
                payload_bytes: walked.payload_bytes,
            });
        } else {
            // Only reachable for the last segment. Truncate the torn
            // tail so the writer can resume appending cleanly.
            truncated_tail = walked.truncated;
            if walked.truncated > 0 {
                OpenOptions::new()
                    .write(true)
                    .open(&path)
                    .and_then(|f| f.set_len(walked.consumed as u64))
                    .map_err(|e| io_corrupt(&path, "cannot truncate torn tail", e))?;
            }
            if walked.consumed == 0 {
                // Torn during creation: remove the empty shell entirely.
                let _ = std::fs::remove_file(&path);
            } else {
                active = Some(ActiveMeta {
                    ordinal,
                    records,
                    payload_bytes: walked.payload_bytes,
                    file_len: walked.consumed as u64,
                });
            }
        }
        tail_frames.extend(walked.payloads);
    }

    Ok(ScannedStore {
        checkpoint,
        tail_frames,
        sealed,
        active,
        records_total: cont.records,
        payload_total,
        truncated_tail,
        epoch: cont.epoch,
        next_seq: cont.next_seq,
        resync_at: cont.resync_at,
    })
}

impl WalkedSegment {
    fn record_count(&self) -> u32 {
        // lint:allow(cast-truncation): per-segment record count is bounded by the u32 footer field walk_segment validated
        self.payloads.len() as u32
    }
}

/// Cold history read back by [`hydrate`].
#[derive(Debug)]
pub struct HydratedCold {
    /// Raw frames of the checkpoint-covered segments, in append order.
    pub frames: Vec<Bytes>,
    /// Every checkpoint on disk (compaction may have removed some), in
    /// covered order — seed material for historical decoder anchors.
    pub checkpoints: Vec<LoadedCheckpoint>,
    /// Decoder epoch after the cold frames.
    pub epoch: u32,
    /// Next expected sequence number after the cold frames.
    pub next_seq: u64,
}

/// Read back the cold region of a store: the sealed segments a
/// checkpoint covering `covered` segments spans, plus every checkpoint
/// file. Validates framing, CRCs, and continuity from the stream origin.
pub fn hydrate(dir: &Path, node: NodeId, covered: u32) -> Result<HydratedCold, SbrError> {
    let sdir = sensor_dir(dir, node);
    let mut cont = Continuity::fresh();
    let mut frames = Vec::new();
    for ordinal in 0..covered {
        let path = segment_path(&sdir, ordinal);
        let raw = read_segment_raw(&path)?;
        let walked = walk_segment(&raw, &path, ordinal, &mut cont, false)?;
        frames.extend(walked.payloads);
    }
    let (_, cks) = list_store(&sdir)?;
    let mut checkpoints = Vec::with_capacity(cks.len());
    for c in cks {
        checkpoints.push(load_checkpoint(&checkpoint_path(&sdir, c))?);
    }
    Ok(HydratedCold {
        frames,
        checkpoints,
        epoch: cont.epoch,
        next_seq: cont.next_seq,
    })
}

// --- verification (read-only full audit) ---

/// Full read-only audit of one sensor's store ([`verify`]).
#[derive(Debug)]
pub struct StoreReport {
    /// Segment files present (sealed + active).
    pub segments: u32,
    /// Checkpoint files present.
    pub checkpoints: u32,
    /// Total records across all segments.
    pub records: u64,
    /// Total payload bytes across all segments.
    pub payload_bytes: u64,
    /// Torn-tail bytes in the active segment (not truncated — verify is
    /// read-only).
    pub truncated_tail: usize,
    /// Store-wide record index of the newest resync frame, if any.
    pub newest_resync: Option<u64>,
    /// Decoder epoch after the full walk.
    pub epoch: u32,
    /// Next expected sequence number after the full walk.
    pub next_seq: u64,
    /// Whether an unsealed active segment exists.
    pub active: bool,
}

/// Audit a sensor's store end to end without modifying it: walk every
/// segment from the origin, validate every record CRC and the continuity
/// chain, and cross-check every checkpoint's snapshot against the walk
/// state at its boundary.
pub fn verify(dir: &Path, node: NodeId) -> Result<StoreReport, SbrError> {
    let sdir = sensor_dir(dir, node);
    if !sdir.exists() {
        return Err(SbrError::Corrupt(format!("no store at {}", sdir.display())));
    }
    let (segs, cks) = list_store(&sdir)?;
    for (i, &ord) in segs.iter().enumerate() {
        // lint:allow(cast-truncation): u32 -> usize widens on this 64-bit target
        if ord as usize != i {
            return Err(SbrError::Corrupt(format!(
                "store {} is missing segment {i}",
                sdir.display()
            )));
        }
    }
    let mut cont = Continuity::fresh();
    let mut sealed: Vec<SealedMeta> = Vec::new();
    // Walk state at each seal boundary: boundaries[c] = state after the
    // first c sealed segments, used to validate checkpoints.
    let mut boundaries: Vec<(u64, u64, u32, u64)> = vec![(0, 0, 0, 0)];
    let mut payload_total = 0u64;
    let mut truncated_tail = 0usize;
    let mut active = false;
    let max_seg = segs.last().copied();
    if let Some(max_seg) = max_seg {
        for ordinal in 0..=max_seg {
            let path = segment_path(&sdir, ordinal);
            let raw = read_segment_raw(&path)?;
            let walked = walk_segment(&raw, &path, ordinal, &mut cont, ordinal == max_seg)?;
            payload_total += walked.payload_bytes;
            if walked.sealed {
                sealed.push(SealedMeta {
                    ordinal,
                    records: walked.record_count(),
                    payload_bytes: walked.payload_bytes,
                });
                boundaries.push((cont.records, payload_total, cont.epoch, cont.next_seq));
            } else {
                truncated_tail = walked.truncated;
                active = walked.consumed > 0;
            }
        }
    }
    for &c in &cks {
        let ck = load_checkpoint(&checkpoint_path(&sdir, c))?;
        // lint:allow(cast-truncation): u32 -> usize widens on this 64-bit target
        let Some(&(records, payload, epoch, next_seq)) = boundaries.get(ck.covered as usize) else {
            return Err(SbrError::Corrupt(format!(
                "checkpoint {} covers {} segments but only {} are sealed",
                checkpoint_path(&sdir, c).display(),
                ck.covered,
                sealed.len()
            )));
        };
        // lint:allow(cast-truncation): u32 -> usize widens on this 64-bit target
        let index_matches = ck.index.len() == ck.covered as usize
            && ck.index.iter().zip(sealed.iter()).all(|(a, b)| a == b);
        if ck.state.records != records
            || ck.state.payload_bytes != payload
            || ck.state.epoch != epoch
            || ck.state.next_seq != next_seq
            || !index_matches
        {
            return Err(SbrError::InconsistentState(format!(
                "checkpoint {} disagrees with the segment walk at its boundary",
                checkpoint_path(&sdir, c).display()
            )));
        }
    }
    Ok(StoreReport {
        segments: u32::try_from(segs.len())
            .map_err(|_| SbrError::Corrupt("segment count overflows u32".into()))?,
        checkpoints: u32::try_from(cks.len())
            .map_err(|_| SbrError::Corrupt("checkpoint count overflows u32".into()))?,
        records: cont.records,
        payload_bytes: payload_total,
        truncated_tail,
        newest_resync: cont.resync_at,
        epoch: cont.epoch,
        next_seq: cont.next_seq,
        active,
    })
}

// --- compaction ---

/// Drop checkpoints made redundant by an in-stream resync snapshot: a
/// resync frame carries the complete base signal, so any checkpoint
/// whose boundary lies at or before the resync record (its `records`
/// count ≤ `resync_at`) adds nothing a replay from the resync can't
/// reconstruct. The newest checkpoint is always kept (it bounds the
/// recovery tail). Segment data is never touched, so recovered station
/// state is byte-identical with compaction on or off. Returns the number
/// of checkpoint files removed.
pub fn compact(dir: &Path, node: NodeId, resync_at: u64) -> Result<u32, SbrError> {
    let sdir = sensor_dir(dir, node);
    if !sdir.exists() {
        return Ok(0);
    }
    let (_, cks) = list_store(&sdir)?;
    let Some(&newest) = cks.last() else {
        return Ok(0);
    };
    let mut dropped = 0u32;
    for &c in &cks {
        if c == newest {
            continue;
        }
        let path = checkpoint_path(&sdir, c);
        let ck = load_checkpoint(&path)?;
        if ck.state.records <= resync_at {
            std::fs::remove_file(&path)
                .map_err(|e| io_corrupt(&path, "cannot remove checkpoint", e))?;
            dropped += 1;
        }
    }
    Ok(dropped)
}

/// The node ids that have a store under `dir` (subdirectories named
/// `sensor-<id>`), sorted.
pub fn nodes(dir: &Path) -> Vec<NodeId> {
    let mut ids = Vec::new();
    let Ok(entries) = std::fs::read_dir(dir) else {
        return ids;
    };
    for entry in entries.flatten() {
        if !entry.path().is_dir() {
            continue;
        }
        let name = entry.file_name();
        if let Some(id) = name
            .to_str()
            .and_then(|s| s.strip_prefix("sensor-"))
            .and_then(|s| s.parse::<NodeId>().ok())
        {
            ids.push(id);
        }
    }
    ids.sort_unstable();
    ids
}

// --- the segment writer ---

struct ActiveSegment {
    path: PathBuf,
    file: BufWriter<File>,
    ordinal: u32,
    records: u32,
    payload_bytes: u64,
    file_len: u64,
}

/// Append-side handle for one sensor's segmented store: appends CRC-framed
/// records, seals segments at the size budget, and writes checkpoints at
/// seal boundaries.
#[derive(Debug)]
pub struct SegmentWriter {
    sdir: PathBuf,
    segment_bytes: u64,
    active: Option<ActiveSegment>,
    sealed: Vec<SealedMeta>,
    records_total: u64,
    payload_total: u64,
}

impl std::fmt::Debug for ActiveSegment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveSegment")
            .field("path", &self.path)
            .field("ordinal", &self.ordinal)
            .field("records", &self.records)
            .field("file_len", &self.file_len)
            .finish()
    }
}

impl SegmentWriter {
    /// Open (creating or resuming) the store for `node` under `dir`,
    /// scanning it first. Prefer [`SegmentWriter::resume`] when the
    /// caller already scanned.
    pub fn open(dir: &Path, node: NodeId, segment_bytes: u64) -> Result<Self, SbrError> {
        let scanned = scan(dir, node)?;
        Self::resume(dir, node, segment_bytes, &scanned)
    }

    /// Resume appending after a [`scan`] (which already truncated any
    /// torn tail from the active segment).
    pub fn resume(
        dir: &Path,
        node: NodeId,
        segment_bytes: u64,
        scanned: &ScannedStore,
    ) -> Result<Self, SbrError> {
        let sdir = sensor_dir(dir, node);
        std::fs::create_dir_all(&sdir).map_err(|e| io_corrupt(&sdir, "cannot create", e))?;
        // lint:allow(cast-truncation): usize -> u64 widens
        let segment_bytes = segment_bytes.max((SEG_HEADER + RECORD_OVERHEAD + 1) as u64);
        let active = match scanned.active {
            None => None,
            Some(meta) => {
                let path = segment_path(&sdir, meta.ordinal);
                let file = OpenOptions::new()
                    .append(true)
                    .open(&path)
                    .map_err(|e| io_corrupt(&path, "cannot reopen active segment", e))?;
                Some(ActiveSegment {
                    path,
                    file: BufWriter::new(file),
                    ordinal: meta.ordinal,
                    records: meta.records,
                    payload_bytes: meta.payload_bytes,
                    file_len: meta.file_len,
                })
            }
        };
        Ok(SegmentWriter {
            sdir,
            segment_bytes,
            active,
            sealed: scanned.sealed.clone(),
            records_total: scanned.records_total,
            payload_total: scanned.payload_total,
        })
    }

    /// The directory this writer's segments live in.
    pub fn store_dir(&self) -> &Path {
        &self.sdir
    }

    /// Total records across the store (covered + appended).
    pub fn records_total(&self) -> u64 {
        self.records_total
    }

    /// Total payload bytes across the store.
    pub fn payload_total(&self) -> u64 {
        self.payload_total
    }

    /// Sealed-segment index (covered + sealed by this writer).
    pub fn sealed(&self) -> &[SealedMeta] {
        &self.sealed
    }

    /// Append one wire frame as a CRC-framed record and flush. Returns
    /// `Some(meta)` when the append filled the segment to its budget and
    /// sealed it — the caller should follow up with
    /// [`SegmentWriter::write_checkpoint`].
    pub fn append(&mut self, frame: &Bytes) -> Result<Option<SealedMeta>, SbrError> {
        // lint:allow(cast-truncation): usize -> u64 widens — this IS the length guard
        if frame.len() as u64 >= u32::MAX as u64 {
            return Err(SbrError::InvalidConfig(format!(
                "frame of {} bytes exceeds the record size limit",
                frame.len()
            )));
        }
        if self.active.is_none() {
            let ordinal = u32::try_from(self.sealed.len()).map_err(|_| {
                SbrError::Corrupt("sealed segment count overflows the u32 ordinal".into())
            })?;
            let path = segment_path(&self.sdir, ordinal);
            let file = OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(&path)
                .map_err(|e| io_corrupt(&path, "cannot create segment", e))?;
            let mut file = BufWriter::new(file);
            let header = encode_segment_header(ordinal, self.records_total);
            file.write_all(&header)
                .map_err(|e| io_corrupt(&path, "cannot write segment header", e))?;
            self.active = Some(ActiveSegment {
                path,
                file,
                ordinal,
                records: 0,
                payload_bytes: 0,
                file_len: SEG_HEADER as u64,
            });
        }
        let budget = self.segment_bytes;
        let Some(active) = self.active.as_mut() else {
            return Err(SbrError::InconsistentState(
                "segment writer lost its active segment".to_string(),
            ));
        };
        let record = encode_record(frame);
        active
            .file
            .write_all(&record)
            .and_then(|()| active.file.flush())
            .map_err(|e| io_corrupt(&active.path, "cannot append record", e))?;
        active.records += 1;
        // lint:allow(cast-truncation): usize -> u64 widens
        active.payload_bytes += frame.len() as u64;
        active.file_len += record.len() as u64; // lint:allow(cast-truncation): usize -> u64 widens
        self.records_total += 1;
        self.payload_total += frame.len() as u64; // lint:allow(cast-truncation): usize -> u64 widens
        if active.file_len >= budget {
            let footer = encode_segment_footer(active.records, active.payload_bytes);
            active
                .file
                .write_all(&footer)
                .and_then(|()| active.file.flush())
                .map_err(|e| io_corrupt(&active.path, "cannot seal segment", e))?;
            let meta = SealedMeta {
                ordinal: active.ordinal,
                records: active.records,
                payload_bytes: active.payload_bytes,
            };
            self.active = None;
            self.sealed.push(meta);
            return Ok(Some(meta));
        }
        Ok(None)
    }

    /// Write a checkpoint at the current seal boundary (atomically, via
    /// a `.tmp` rename). Only legal when no segment is active — i.e.
    /// immediately after [`SegmentWriter::append`] returned a seal — and
    /// when the caller's snapshot covers exactly the records written.
    pub fn write_checkpoint(&mut self, state: &CheckpointState) -> Result<PathBuf, SbrError> {
        if self.active.is_some() {
            return Err(SbrError::InconsistentState(
                "checkpoint requested while a segment is active".to_string(),
            ));
        }
        if state.records != self.records_total {
            return Err(SbrError::InconsistentState(format!(
                "checkpoint snapshot covers {} records but the store holds {}",
                state.records, self.records_total
            )));
        }
        let covered = u32::try_from(self.sealed.len()).map_err(|_| {
            SbrError::Corrupt("sealed segment count overflows the u32 ordinal".into())
        })?;
        let bytes = encode_checkpoint(covered, state, &self.sealed)?;
        let path = checkpoint_path(&self.sdir, covered);
        let tmp = path.with_extension("sbrck.tmp");
        let mut f = File::create(&tmp).map_err(|e| io_corrupt(&tmp, "cannot create", e))?;
        f.write_all(&bytes)
            .and_then(|()| f.sync_all())
            .map_err(|e| io_corrupt(&tmp, "cannot write checkpoint", e))?;
        drop(f);
        std::fs::rename(&tmp, &path).map_err(|e| io_corrupt(&path, "cannot publish", e))?;
        Ok(path)
    }
}

// --- legacy single-file stream format (`.sbr` interchange) ---

/// Append-only writer for the legacy single-file frame stream
/// (`u32 LE len ∥ frame`) — the `.sbr` interchange format.
#[derive(Debug)]
pub struct StreamWriter {
    path: PathBuf,
    file: BufWriter<File>,
    frames: u64,
}

impl StreamWriter {
    /// Open (creating or appending to) a stream file.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(StreamWriter {
            path: path.to_path_buf(),
            file: BufWriter::new(file),
            frames: 0,
        })
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Frames appended through this writer instance.
    pub fn frames_written(&self) -> u64 {
        self.frames
    }

    /// Append one wire frame, length-prefixed, and flush.
    pub fn append(&mut self, frame: &Bytes) -> std::io::Result<()> {
        let len = u32::try_from(frame.len()).map_err(|_| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "frame exceeds the u32 length-prefix limit",
            )
        })?;
        self.file.write_all(&len.to_le_bytes())?;
        self.file.write_all(frame)?;
        self.file.flush()?;
        self.frames += 1;
        Ok(())
    }
}

/// Outcome of reading a legacy stream (or a segmented tail replay) back.
#[derive(Debug)]
pub struct RecoveredLog {
    /// The complete raw frames (original wire bytes), in append order,
    /// already parse-validated — re-ingesting these preserves the stream
    /// byte-for-byte across restarts.
    pub frames: Vec<Bytes>,
    /// The transmissions carried by [`RecoveredLog::frames`] (resync
    /// envelopes stripped) — a convenience view for tooling that only
    /// cares about the payloads.
    pub transmissions: Vec<sbr_core::Transmission>,
    /// Bytes of a truncated trailing frame that were discarded (0 for a
    /// clean stream).
    pub truncated_tail: usize,
}

/// Read a legacy stream file back, validating every frame; tolerates
/// (and reports) a truncated tail. Continuity rules match the segmented
/// walk (and the base station's receive path).
pub fn recover_stream(path: &Path) -> Result<RecoveredLog, SbrError> {
    let mut raw = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut raw))
        .map_err(|e| io_corrupt(path, "cannot read stream", e))?;

    let mut frames = Vec::new();
    let mut transmissions = Vec::new();
    let mut cont = Continuity::fresh();
    let mut pos = 0usize;
    // Stops at the first truncated length prefix or body (crash mid-append).
    while let Some(header) = raw
        .get(pos..pos + 4)
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
    {
        let len = u32::from_le_bytes(header) as usize;
        let Some(body) = raw.get(pos + 4..pos + 4 + len) else {
            break; // truncated tail
        };
        transmissions.push(cont.admit(body, path)?);
        frames.push(Bytes::copy_from_slice(body));
        pos += 4 + len;
    }
    Ok(RecoveredLog {
        frames,
        transmissions,
        truncated_tail: raw.len() - pos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbr_core::{Decoder, SbrConfig, SbrEncoder};

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sbrseg-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn frames(n: usize) -> Vec<Bytes> {
        let mut enc = SbrEncoder::new(2, 64, SbrConfig::new(48, 48)).unwrap();
        (0..n)
            .map(|c| {
                let rows: Vec<Vec<f64>> = (0..2)
                    .map(|r| {
                        (0..64)
                            .map(|i| ((i + c * 7 + r) as f64 * 0.3).sin())
                            .collect()
                    })
                    .collect();
                codec::encode(&enc.encode(&rows).unwrap())
            })
            .collect()
    }

    /// v2 frames from an ARQ node whose tiny retransmission buffer forces
    /// overflow resyncs mid-stream.
    fn v2_frames_with_resyncs(n: usize) -> Vec<Bytes> {
        let mut node = crate::SensorNode::new(1, 2, 64, SbrConfig::new(48, 48)).unwrap();
        node.enable_arq(2);
        (0..n)
            .map(|c| {
                let mut flush = None;
                for i in 0..64 {
                    let t = (c * 64 + i) as f64;
                    flush = node.record(&[(t * 0.3).sin(), (t * 0.2).cos()]).unwrap();
                }
                flush.unwrap().frame
            })
            .collect()
    }

    fn fill(dir: &Path, node: NodeId, segment_bytes: u64, fs: &[Bytes]) -> SegmentWriter {
        let mut w = SegmentWriter::open(dir, node, segment_bytes).unwrap();
        for f in fs {
            w.append(f).unwrap();
        }
        w
    }

    #[test]
    fn write_then_scan_roundtrips() {
        let dir = tempdir("roundtrip");
        let fs = frames(4);
        let w = fill(&dir, 3, DEFAULT_SEGMENT_BYTES, &fs);
        assert_eq!(w.records_total(), 4);
        let rec = scan(&dir, 3).unwrap();
        assert_eq!(
            rec.tail_frames, fs,
            "recovered frames are the original bytes"
        );
        assert_eq!(rec.truncated_tail, 0);
        assert_eq!(rec.records_total, 4);
        // The recovered stream decodes end to end.
        let mut d = Decoder::new();
        for f in &rec.tail_frames {
            let parsed = codec::decode_any(&mut f.clone()).unwrap();
            d.decode_frame(&parsed).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_is_discarded_not_fatal() {
        let dir = tempdir("truncate");
        let fs = frames(3);
        drop(fill(&dir, 1, DEFAULT_SEGMENT_BYTES, &fs));
        // Chop 5 bytes off the end (mid-record crash).
        let path = segment_path(&sensor_dir(&dir, 1), 0);
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 5]).unwrap();
        let rec = scan(&dir, 1).unwrap();
        assert_eq!(rec.tail_frames.len(), 2);
        assert!(rec.truncated_tail > 0);
        // Scan truncated the file: a fresh scan is clean.
        let rec2 = scan(&dir, 1).unwrap();
        assert_eq!(rec2.tail_frames.len(), 2);
        assert_eq!(rec2.truncated_tail, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_middle_is_fatal() {
        let dir = tempdir("corrupt");
        let fs = frames(2);
        drop(fill(&dir, 1, DEFAULT_SEGMENT_BYTES, &fs));
        let path = segment_path(&sensor_dir(&dir, 1), 0);
        let mut raw = std::fs::read(&path).unwrap();
        raw[SEG_HEADER + 6] ^= 0xff; // inside the first record's payload
        std::fs::write(&path, &raw).unwrap();
        let err = scan(&dir, 1).unwrap_err();
        assert!(matches!(err, SbrError::Corrupt(_)), "{err}");
        assert!(
            err.to_string().contains("seg-00000000.sbrseg"),
            "error blames the damaged segment: {err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_across_reopens() {
        let dir = tempdir("reopen");
        let fs = frames(4);
        drop(fill(&dir, 2, DEFAULT_SEGMENT_BYTES, &fs[..2]));
        drop(fill(&dir, 2, DEFAULT_SEGMENT_BYTES, &fs[2..]));
        let rec = scan(&dir, 2).unwrap();
        assert_eq!(rec.tail_frames, fs);
        assert_eq!(rec.next_seq, 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v2_store_with_resyncs_recovers_raw_bytes() {
        let dir = tempdir("v2-resync");
        let fs = v2_frames_with_resyncs(7);
        drop(fill(&dir, 5, DEFAULT_SEGMENT_BYTES, &fs));
        let rec = scan(&dir, 5).unwrap();
        assert_eq!(
            rec.tail_frames, fs,
            "recovered frames are the original bytes"
        );
        assert_eq!(rec.truncated_tail, 0);
        assert!(rec.resync_at.is_some(), "stream must contain resyncs");
        assert!(rec.epoch > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_regression_in_store_is_fatal() {
        let dir = tempdir("epoch-regress");
        let fs = v2_frames_with_resyncs(7);
        // Find a resync frame and append it again after the stream: the
        // replayed (stale) resync must be rejected at recovery.
        let resync = fs
            .iter()
            .find(|f| {
                codec::decode_any(&mut (*f).clone()).unwrap().kind == sbr_core::FrameKind::Resync
            })
            .expect("stream has a resync")
            .clone();
        let mut w = fill(&dir, 6, DEFAULT_SEGMENT_BYTES, &fs);
        w.append(&resync).unwrap();
        assert!(matches!(scan(&dir, 6), Err(SbrError::InconsistentState(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_append_is_an_error_not_a_panic() {
        let dir = tempdir("garbage");
        let fs = frames(2);
        drop(fill(&dir, 9, DEFAULT_SEGMENT_BYTES, &fs));
        let path = segment_path(&sensor_dir(&dir, 9), 0);

        // Garbage with no valid record CRC: Corrupt, never a panic.
        let clean = std::fs::read(&path).unwrap();
        let mut raw = clean.clone();
        raw.extend_from_slice(&8u32.to_le_bytes());
        raw.extend_from_slice(&[0xA5; 12]);
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(scan(&dir, 9), Err(SbrError::Corrupt(_))));

        // Garbage with *valid framing* but an unparseable payload: the
        // record CRC passes, decode_any must still reject it.
        std::fs::write(&path, &clean).unwrap();
        let mut raw = clean.clone();
        let mut rec = Vec::new();
        rec.extend_from_slice(&8u32.to_le_bytes());
        rec.extend_from_slice(&[0xA5; 8]);
        let crc = codec::crc32(&rec);
        rec.extend_from_slice(&crc.to_le_bytes());
        raw.extend_from_slice(&rec);
        std::fs::write(&path, &raw).unwrap();
        assert!(scan(&dir, 9).is_err());

        // A length prefix pointing past EOF is a torn tail; kept records
        // survive.
        std::fs::write(&path, &clean).unwrap();
        let mut raw = clean.clone();
        raw.extend_from_slice(&(u32::MAX).to_le_bytes());
        raw.push(0x42);
        std::fs::write(&path, &raw).unwrap();
        let rec = scan(&dir, 9).unwrap();
        assert_eq!(rec.tail_frames.len(), 2);
        assert_eq!(rec.truncated_tail, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequence_gap_in_store_is_fatal() {
        let dir = tempdir("gap");
        let fs = frames(3);
        let mut w = SegmentWriter::open(&dir, 1, DEFAULT_SEGMENT_BYTES).unwrap();
        w.append(&fs[0]).unwrap();
        w.append(&fs[2]).unwrap(); // skipped seq 1
        assert!(matches!(scan(&dir, 1), Err(SbrError::InconsistentState(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A segment budget small enough that every frame seals a segment.
    const TINY: u64 = 1;

    #[test]
    fn seal_and_checkpoint_bound_the_recovery_tail() {
        let dir = tempdir("seal");
        let fs = frames(6);
        let mut w = SegmentWriter::open(&dir, 4, TINY).unwrap();
        let mut cont = Continuity::fresh();
        for f in &fs {
            let sealed = w.append(f).unwrap();
            let tx = cont.admit(f, Path::new("mem")).unwrap();
            assert_eq!(tx.seq + 1, cont.next_seq);
            let meta = sealed.expect("tiny budget seals every append");
            assert_eq!(meta.records, 1);
            w.write_checkpoint(&CheckpointState {
                records: w.records_total(),
                payload_bytes: w.payload_total(),
                epoch: cont.epoch,
                next_seq: cont.next_seq,
                resync_at: cont.resync_at,
                base: None,
            })
            .unwrap();
        }
        assert_eq!(w.sealed().len(), 6);
        let rec = scan(&dir, 4).unwrap();
        // The newest checkpoint covers everything: recovery replays nothing.
        assert_eq!(rec.tail_frames.len(), 0);
        assert_eq!(rec.records_total, 6);
        assert_eq!(rec.checkpoint.as_ref().unwrap().covered, 6);
        assert_eq!(rec.next_seq, 6);
        // The cold region hydrates back to the original bytes.
        let cold = hydrate(&dir, 4, 6).unwrap();
        assert_eq!(cold.frames, fs);
        assert_eq!(cold.next_seq, 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_replays_only_the_post_checkpoint_tail() {
        let dir = tempdir("tail-bound");
        let fs = frames(7);
        let mut w = SegmentWriter::open(&dir, 4, TINY).unwrap();
        let mut cont = Continuity::fresh();
        for (i, f) in fs.iter().enumerate() {
            w.append(f).unwrap();
            cont.admit(f, Path::new("mem")).unwrap();
            if i == 4 {
                // Only one checkpoint, midway: the tail is what follows.
                w.write_checkpoint(&CheckpointState {
                    records: w.records_total(),
                    payload_bytes: w.payload_total(),
                    epoch: cont.epoch,
                    next_seq: cont.next_seq,
                    resync_at: cont.resync_at,
                    base: None,
                })
                .unwrap();
            }
        }
        let rec = scan(&dir, 4).unwrap();
        assert_eq!(rec.tail_frames, fs[5..].to_vec());
        assert_eq!(rec.records_total, 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_seal_resumes_as_active_segment() {
        let dir = tempdir("torn-seal");
        let fs = frames(3);
        drop(fill(&dir, 2, DEFAULT_SEGMENT_BYTES, &fs[..2]));
        // Hand-append a footer, then tear it mid-write.
        let path = segment_path(&sensor_dir(&dir, 2), 0);
        let mut raw = std::fs::read(&path).unwrap();
        let full = raw.len();
        let footer = encode_segment_footer(2, fs[0].len() as u64 + fs[1].len() as u64);
        raw.extend_from_slice(&footer[..SEG_FOOTER - 3]);
        std::fs::write(&path, &raw).unwrap();
        let rec = scan(&dir, 2).unwrap();
        assert_eq!(
            rec.tail_frames.len(),
            2,
            "records before the torn seal survive"
        );
        assert!(rec.active.is_some(), "segment stays active");
        assert_eq!(std::fs::metadata(&path).unwrap().len() as usize, full);
        // The writer resumes and the next append lands cleanly.
        let mut w = SegmentWriter::resume(&dir, 2, DEFAULT_SEGMENT_BYTES, &rec).unwrap();
        w.append(&fs[2]).unwrap();
        assert_eq!(scan(&dir, 2).unwrap().tail_frames, fs);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stray_tmp_checkpoint_is_swept() {
        let dir = tempdir("tmp-sweep");
        let fs = frames(2);
        drop(fill(&dir, 3, DEFAULT_SEGMENT_BYTES, &fs));
        let stray = sensor_dir(&dir, 3).join("ck-00000009.sbrck.tmp");
        std::fs::write(&stray, b"half-written checkpoint").unwrap();
        let rec = scan(&dir, 3).unwrap();
        assert_eq!(rec.tail_frames.len(), 2);
        assert!(!stray.exists(), "scan sweeps crash leftovers");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_rejected_while_segment_active() {
        let dir = tempdir("ck-active");
        let fs = frames(1);
        let mut w = fill(&dir, 1, DEFAULT_SEGMENT_BYTES, &fs);
        let err = w
            .write_checkpoint(&CheckpointState {
                records: 1,
                payload_bytes: fs[0].len() as u64,
                epoch: 0,
                next_seq: 1,
                resync_at: None,
                base: None,
            })
            .unwrap_err();
        assert!(matches!(err, SbrError::InconsistentState(_)));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_roundtrips_base_signal_and_resync() {
        let dir = tempdir("ck-base");
        let fs = v2_frames_with_resyncs(5);
        let mut w = SegmentWriter::open(&dir, 8, TINY).unwrap();
        let mut d = Decoder::for_node(8);
        let mut cont = Continuity::fresh();
        for f in &fs {
            w.append(f).unwrap();
            cont.admit(f, Path::new("mem")).unwrap();
            let parsed = codec::decode_any(&mut f.clone()).unwrap();
            d.decode_frame(&parsed).unwrap();
        }
        let (base, next_seq) = d.snapshot();
        assert!(base.is_some());
        w.write_checkpoint(&CheckpointState {
            records: 5,
            payload_bytes: w.payload_total(),
            epoch: d.epoch(),
            next_seq,
            resync_at: cont.resync_at,
            base: base.clone(),
        })
        .unwrap();
        let rec = scan(&dir, 8).unwrap();
        let ck = rec.checkpoint.unwrap();
        assert_eq!(ck.state.next_seq, next_seq);
        assert_eq!(ck.state.epoch, d.epoch());
        assert_eq!(ck.state.resync_at, cont.resync_at);
        assert_eq!(ck.state.base, base, "base signal survives the roundtrip");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_drops_superseded_checkpoints_keeps_newest() {
        let dir = tempdir("compact");
        let fs = v2_frames_with_resyncs(8);
        let mut w = SegmentWriter::open(&dir, 7, TINY).unwrap();
        let mut cont = Continuity::fresh();
        for f in &fs {
            w.append(f).unwrap();
            cont.admit(f, Path::new("mem")).unwrap();
            w.write_checkpoint(&CheckpointState {
                records: w.records_total(),
                payload_bytes: w.payload_total(),
                epoch: cont.epoch,
                next_seq: cont.next_seq,
                resync_at: cont.resync_at,
                base: None,
            })
            .unwrap();
        }
        let resync_at = cont.resync_at.expect("stream has resyncs");
        let (_, cks_before) = list_store(&sensor_dir(&dir, 7)).unwrap();
        assert_eq!(cks_before.len(), 8);
        let dropped = compact(&dir, 7, resync_at).unwrap();
        assert!(dropped > 0, "checkpoints behind the resync are dropped");
        let (_, cks_after) = list_store(&sensor_dir(&dir, 7)).unwrap();
        assert_eq!(cks_after.len() + dropped as usize, 8);
        assert_eq!(cks_after.last(), cks_before.last(), "newest kept");
        // Every surviving checkpoint is past the resync (except the newest).
        for &c in &cks_after {
            let ck = load_checkpoint(&checkpoint_path(&sensor_dir(&dir, 7), c)).unwrap();
            assert!(
                ck.state.records > resync_at || Some(&c) == cks_after.last(),
                "ck-{c} should have been dropped"
            );
        }
        // The store still scans, verifies, and hydrates cleanly.
        let rec = scan(&dir, 7).unwrap();
        assert_eq!(rec.records_total, 8);
        verify(&dir, 7).unwrap();
        let cold = hydrate(&dir, 7, rec.checkpoint.unwrap().covered).unwrap();
        assert_eq!(cold.frames, fs);
        // Idempotent.
        assert_eq!(compact(&dir, 7, resync_at).unwrap(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_audits_the_whole_store() {
        let dir = tempdir("verify");
        let fs = frames(5);
        let mut w = SegmentWriter::open(&dir, 4, TINY).unwrap();
        let mut cont = Continuity::fresh();
        for f in &fs {
            w.append(f).unwrap();
            cont.admit(f, Path::new("mem")).unwrap();
            w.write_checkpoint(&CheckpointState {
                records: w.records_total(),
                payload_bytes: w.payload_total(),
                epoch: cont.epoch,
                next_seq: cont.next_seq,
                resync_at: cont.resync_at,
                base: None,
            })
            .unwrap();
        }
        let report = verify(&dir, 4).unwrap();
        assert_eq!(report.segments, 5);
        assert_eq!(report.checkpoints, 5);
        assert_eq!(report.records, 5);
        assert_eq!(report.next_seq, 5);
        assert!(!report.active);
        // Damage one byte inside a sealed segment: verify must fail and
        // blame exactly that file.
        let victim = segment_path(&sensor_dir(&dir, 4), 2);
        let mut raw = std::fs::read(&victim).unwrap();
        raw[SEG_HEADER + 5] ^= 0x01;
        std::fs::write(&victim, &raw).unwrap();
        let err = verify(&dir, 4).unwrap_err();
        assert!(
            err.to_string().contains("seg-00000002.sbrseg"),
            "error names the damaged segment: {err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn verify_catches_checkpoint_divergence() {
        let dir = tempdir("verify-ck");
        let fs = frames(3);
        let mut w = SegmentWriter::open(&dir, 5, TINY).unwrap();
        for f in &fs {
            w.append(f).unwrap();
        }
        // A checkpoint whose snapshot lies about next_seq: framing-valid
        // (its own CRC passes) but inconsistent with the walk.
        let state = CheckpointState {
            records: 3,
            payload_bytes: w.payload_total(),
            epoch: 0,
            next_seq: 99,
            resync_at: None,
            base: None,
        };
        w.write_checkpoint(&state).unwrap();
        assert!(matches!(
            verify(&dir, 5),
            Err(SbrError::InconsistentState(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nodes_lists_stores() {
        let dir = tempdir("nodes");
        drop(fill(&dir, 2, DEFAULT_SEGMENT_BYTES, &frames(1)));
        drop(fill(&dir, 7, DEFAULT_SEGMENT_BYTES, &frames(1)));
        assert_eq!(nodes(&dir), vec![2, 7]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    // --- legacy single-file stream format ---

    #[test]
    fn stream_write_then_recover_roundtrips() {
        let dir = tempdir("stream-roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.sbr");
        let fs = frames(4);
        let mut w = StreamWriter::create(&path).unwrap();
        for f in &fs {
            w.append(f).unwrap();
        }
        assert_eq!(w.frames_written(), 4);
        let rec = recover_stream(&path).unwrap();
        assert_eq!(rec.frames, fs);
        assert_eq!(rec.transmissions.len(), 4);
        assert_eq!(rec.truncated_tail, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stream_truncated_tail_and_garbage() {
        let dir = tempdir("stream-tail");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.sbr");
        let fs = frames(3);
        let mut w = StreamWriter::create(&path).unwrap();
        for f in &fs {
            w.append(f).unwrap();
        }
        drop(w);
        let clean = std::fs::read(&path).unwrap();
        // Torn tail: tolerated.
        std::fs::write(&path, &clean[..clean.len() - 5]).unwrap();
        let rec = recover_stream(&path).unwrap();
        assert_eq!(rec.frames.len(), 2);
        assert!(rec.truncated_tail > 0);
        // Garbage append: Corrupt.
        let mut raw = clean.clone();
        raw.extend_from_slice(&8u32.to_le_bytes());
        raw.extend_from_slice(&[0xA5; 8]);
        std::fs::write(&path, &raw).unwrap();
        assert!(recover_stream(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
