//! Durable per-sensor log files — the paper's Figure 1 architecture keeps
//! "a separate file … for each sensor that is in contact with the base
//! station", appending each compressed chunk (and interleaved base-signal
//! updates) as it arrives.
//!
//! Format: a stream of length-prefixed frames
//! (`u32 LE frame length ∥ codec frame`). Recovery tolerates a truncated
//! tail (a crash mid-append): complete frames are kept, the partial tail is
//! discarded and reported.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;
use sbr_core::{codec, SbrError};

use crate::NodeId;

/// Append-only on-disk log for one sensor.
#[derive(Debug)]
pub struct LogWriter {
    path: PathBuf,
    file: BufWriter<File>,
    frames: u64,
}

impl LogWriter {
    /// Open (creating or appending to) the log for `node` under `dir`.
    pub fn open(dir: &Path, node: NodeId) -> std::io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("sensor-{node}.sbrlog"));
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(LogWriter {
            path,
            file: BufWriter::new(file),
            frames: 0,
        })
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Frames appended through this writer instance.
    pub fn frames_written(&self) -> u64 {
        self.frames
    }

    /// Append one wire frame, length-prefixed, and flush.
    pub fn append(&mut self, frame: &Bytes) -> std::io::Result<()> {
        self.file.write_all(&(frame.len() as u32).to_le_bytes())?;
        self.file.write_all(frame)?;
        self.file.flush()?;
        self.frames += 1;
        Ok(())
    }
}

/// Outcome of reading a log file back.
#[derive(Debug)]
pub struct RecoveredLog {
    /// The complete raw frames (original wire bytes), in append order,
    /// already parse-validated — re-ingesting these preserves the log
    /// byte-for-byte across restarts.
    pub frames: Vec<Bytes>,
    /// The transmissions carried by [`RecoveredLog::frames`] (resync
    /// envelopes stripped) — a convenience view for tooling that only
    /// cares about the payloads.
    pub transmissions: Vec<sbr_core::Transmission>,
    /// Bytes of a truncated trailing frame that were discarded (0 for a
    /// clean log).
    pub truncated_tail: usize,
}

/// Read a sensor log back, validating every frame; tolerates (and reports)
/// a truncated tail.
///
/// Continuity is checked the same way the base station's receive path
/// does: data frames must carry the current epoch and the next sequence
/// number; a resync frame must advance the epoch and resets the expected
/// sequence to its own. A log that violates either was corrupted at rest.
pub fn recover(path: &Path) -> Result<RecoveredLog, SbrError> {
    let mut raw = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut raw))
        .map_err(|e| SbrError::Corrupt(format!("cannot read log {}: {e}", path.display())))?;

    let mut frames = Vec::new();
    let mut transmissions = Vec::new();
    let mut pos = 0usize;
    let mut expected_seq = 0u64;
    let mut epoch = 0u32;
    // Stops at the first truncated length prefix or body (crash mid-append).
    while let Some(header) = raw
        .get(pos..pos + 4)
        .and_then(|s| <[u8; 4]>::try_from(s).ok())
    {
        let len = u32::from_le_bytes(header) as usize;
        let Some(body) = raw.get(pos + 4..pos + 4 + len) else {
            break; // truncated tail
        };
        let bytes = Bytes::copy_from_slice(body);
        let mut frame = body;
        let parsed = codec::decode_any(&mut frame)?;
        if !frame.is_empty() {
            return Err(SbrError::Corrupt(format!(
                "frame at offset {pos} has {} trailing bytes",
                frame.len()
            )));
        }
        match parsed.kind {
            sbr_core::FrameKind::Data => {
                if parsed.epoch != epoch || parsed.tx.seq != expected_seq {
                    return Err(SbrError::InconsistentState(format!(
                        "log {} skips from epoch {epoch} seq {expected_seq} \
                         to epoch {} seq {}",
                        path.display(),
                        parsed.epoch,
                        parsed.tx.seq
                    )));
                }
                expected_seq += 1;
            }
            sbr_core::FrameKind::Resync => {
                if parsed.epoch <= epoch {
                    return Err(SbrError::InconsistentState(format!(
                        "log {}: resync at offset {pos} regresses epoch \
                         {epoch} to {}",
                        path.display(),
                        parsed.epoch
                    )));
                }
                epoch = parsed.epoch;
                expected_seq = parsed.tx.seq + 1;
            }
        }
        transmissions.push(parsed.tx);
        frames.push(bytes);
        pos += 4 + len;
    }
    Ok(RecoveredLog {
        frames,
        transmissions,
        truncated_tail: raw.len() - pos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbr_core::{Decoder, SbrConfig, SbrEncoder};

    fn tempdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("sbrlog-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn frames(n: usize) -> Vec<Bytes> {
        let mut enc = SbrEncoder::new(2, 64, SbrConfig::new(48, 48)).unwrap();
        (0..n)
            .map(|c| {
                let rows: Vec<Vec<f64>> = (0..2)
                    .map(|r| {
                        (0..64)
                            .map(|i| ((i + c * 7 + r) as f64 * 0.3).sin())
                            .collect()
                    })
                    .collect();
                codec::encode(&enc.encode(&rows).unwrap())
            })
            .collect()
    }

    #[test]
    fn write_then_recover_roundtrips() {
        let dir = tempdir("roundtrip");
        let fs = frames(4);
        let mut w = LogWriter::open(&dir, 3).unwrap();
        for f in &fs {
            w.append(f).unwrap();
        }
        assert_eq!(w.frames_written(), 4);
        let rec = recover(w.path()).unwrap();
        assert_eq!(rec.transmissions.len(), 4);
        assert_eq!(rec.truncated_tail, 0);
        // The recovered stream decodes end to end.
        let mut d = Decoder::new();
        for tx in &rec.transmissions {
            d.decode(tx).unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_is_discarded_not_fatal() {
        let dir = tempdir("truncate");
        let fs = frames(3);
        let mut w = LogWriter::open(&dir, 1).unwrap();
        for f in &fs {
            w.append(f).unwrap();
        }
        let path = w.path().to_path_buf();
        drop(w);
        // Chop 5 bytes off the end (mid-frame crash).
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 5]).unwrap();
        let rec = recover(&path).unwrap();
        assert_eq!(rec.transmissions.len(), 2);
        assert!(rec.truncated_tail > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_middle_is_fatal() {
        let dir = tempdir("corrupt");
        let fs = frames(2);
        let mut w = LogWriter::open(&dir, 1).unwrap();
        for f in &fs {
            w.append(f).unwrap();
        }
        let path = w.path().to_path_buf();
        drop(w);
        let mut raw = std::fs::read(&path).unwrap();
        raw[6] ^= 0xff; // inside the first frame's magic/seq
        std::fs::write(&path, &raw).unwrap();
        assert!(recover(&path).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_across_reopens() {
        let dir = tempdir("reopen");
        let fs = frames(4);
        {
            let mut w = LogWriter::open(&dir, 2).unwrap();
            w.append(&fs[0]).unwrap();
            w.append(&fs[1]).unwrap();
        }
        let path = {
            let mut w = LogWriter::open(&dir, 2).unwrap();
            w.append(&fs[2]).unwrap();
            w.append(&fs[3]).unwrap();
            w.path().to_path_buf()
        };
        let rec = recover(&path).unwrap();
        assert_eq!(rec.transmissions.len(), 4);
        assert_eq!(rec.transmissions[3].seq, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// v2 frames from an ARQ node whose tiny retransmission buffer forces
    /// overflow resyncs mid-stream.
    fn v2_frames_with_resyncs(n: usize) -> Vec<Bytes> {
        let mut node = crate::SensorNode::new(1, 2, 64, SbrConfig::new(48, 48)).unwrap();
        node.enable_arq(2);
        (0..n)
            .map(|c| {
                let mut flush = None;
                for i in 0..64 {
                    let t = (c * 64 + i) as f64;
                    flush = node.record(&[(t * 0.3).sin(), (t * 0.2).cos()]).unwrap();
                }
                flush.unwrap().frame
            })
            .collect()
    }

    #[test]
    fn v2_log_with_resyncs_recovers_raw_bytes() {
        let dir = tempdir("v2-resync");
        let fs = v2_frames_with_resyncs(7);
        let mut w = LogWriter::open(&dir, 5).unwrap();
        for f in &fs {
            w.append(f).unwrap();
        }
        let rec = recover(w.path()).unwrap();
        assert_eq!(rec.frames, fs, "recovered frames are the original bytes");
        assert_eq!(rec.transmissions.len(), 7);
        assert_eq!(rec.truncated_tail, 0);
        // The stream really does contain epoch bumps.
        let epochs: Vec<u32> = fs
            .iter()
            .map(|f| codec::decode_any(&mut f.clone()).unwrap().epoch)
            .collect();
        assert!(epochs.last().copied().unwrap() > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epoch_regression_in_log_is_fatal() {
        let dir = tempdir("epoch-regress");
        let fs = v2_frames_with_resyncs(7);
        // Find a resync frame and append it again after the stream: the
        // replayed (stale) resync must be rejected at recovery.
        let resync = fs
            .iter()
            .find(|f| {
                codec::decode_any(&mut (*f).clone()).unwrap().kind == sbr_core::FrameKind::Resync
            })
            .expect("stream has a resync")
            .clone();
        let mut w = LogWriter::open(&dir, 6).unwrap();
        for f in &fs {
            w.append(f).unwrap();
        }
        w.append(&resync).unwrap();
        assert!(recover(w.path()).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_append_is_an_error_not_a_panic() {
        let dir = tempdir("garbage");
        let fs = frames(2);
        let mut w = LogWriter::open(&dir, 9).unwrap();
        for f in &fs {
            w.append(f).unwrap();
        }
        let path = w.path().to_path_buf();
        drop(w);
        // A length prefix that parses followed by a body that doesn't:
        // recover must surface Corrupt, never panic.
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&8u32.to_le_bytes());
        raw.extend_from_slice(&[0xA5; 8]);
        std::fs::write(&path, &raw).unwrap();
        assert!(matches!(recover(&path), Err(SbrError::Corrupt(_))));

        // A length prefix pointing past EOF is a truncated tail, kept
        // frames survive.
        let mut raw = std::fs::read(&path).unwrap();
        raw.truncate(raw.len() - 12);
        raw.extend_from_slice(&(u32::MAX).to_le_bytes());
        raw.push(0x42);
        std::fs::write(&path, &raw).unwrap();
        let rec = recover(&path).unwrap();
        assert_eq!(rec.transmissions.len(), 2);
        assert_eq!(rec.truncated_tail, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sequence_gap_in_log_is_fatal() {
        let dir = tempdir("gap");
        let fs = frames(3);
        let mut w = LogWriter::open(&dir, 1).unwrap();
        w.append(&fs[0]).unwrap();
        w.append(&fs[2]).unwrap(); // skipped seq 1
        let rec = recover(w.path());
        assert!(rec.is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
