//! The network driver: feed every sensor its measurement stream, route each
//! flushed batch up the tree, charge radio energy (including overhearing),
//! and score reconstruction fidelity at the base station.
//!
//! Three dissemination strategies are compared, mirroring the introduction
//! of the paper: sending the **raw** feed, classic per-batch **aggregation**
//! (average/min/max), and **SBR** approximation.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::Instant;

use bytes::Bytes;
use sbr_core::{codec, ErrorMetric, SbrConfig, SbrError};
use sbr_obs::{Counter, EventKind, FrameId, Gauge, Histogram, Recorder, Timeline};

use crate::base_station::{BaseStation, Receipt};
use crate::energy::{EnergyLedger, EnergyModel};
use crate::fault::FaultPlan;
use crate::link::LossyLink;
use crate::node::SensorNode;
use crate::topology::Topology;
use crate::NodeId;

/// Observability handles for one network (see `sbr-obs`). All handles are
/// no-ops until [`Network::set_recorder`] is called; the disabled cost is
/// one branch per event, so the hooks stay unconditionally wired in.
///
/// Metric names follow the `crate.module.name` convention:
///
/// | name | kind | meaning |
/// |------|------|---------|
/// | `sensor_net.node.<i>.tx_values` | counter | values node `i` transmitted (incl. ARQ retries and ACKs) |
/// | `sensor_net.node.<i>.rx_values` | counter | values node `i` received as the addressed parent |
/// | `sensor_net.node.<i>.energy_total` | gauge | node `i`'s ledger total after the run |
/// | `sensor_net.link.hop_attempts` | counter | per-hop transmission attempts |
/// | `sensor_net.link.drops` | counter | frames dropped after exhausting per-hop retries |
/// | `sensor_net.network.values_sent` | counter | values injected at the sensors |
/// | `sensor_net.energy.{tx,rx,overhear,idle,cpu}` | gauge | network-wide ledger deltas by category |
/// | `sensor_net.recovery.gaps` | counter | frames the station rejected for a missing predecessor |
/// | `sensor_net.recovery.resyncs` | counter | resync frames accepted (stream re-anchored) |
/// | `sensor_net.recovery.duplicates` | counter | retransmitted/duplicated frames discarded |
/// | `sensor_net.recovery.corrupt` | counter | frames failing CRC or parse at the station |
/// | `sensor_net.recovery.retx_overflows` | counter | sensor retransmission-buffer overflows |
/// | `sensor_net.recovery.acks` | counter | cumulative ACK rounds sent by the base |
/// | `sensor_net.recovery.retx_depth` | gauge | retransmission-queue depth after the latest ACK |
/// | `sensor_net.recovery.retx_depth_per_round` | histogram | retransmission-queue depth sampled every ARQ round |
/// | `sensor_net.recovery.ack_rtt_rounds` | histogram | ARQ rounds between a frame's first tx and its ACK |
/// | `sensor_net.station.decode_batch_ns` | histogram | station time decoding one round's arrivals |
///
/// With a [`Timeline`] attached ([`Network::set_timeline`]), every v2
/// frame additionally gets per-frame lifecycle events (`encoded`,
/// `queued`, `tx`, `retx`, `dropped`, `dup`, `corrupt`, `acked`,
/// `decoded`, `persisted`, `resynced`), mirrored into the recorder's
/// trace sink as `sensor_net.timeline.<kind>` events so `sbr trace` can
/// filter them by frame, node or kind.
#[derive(Debug, Clone, Default)]
struct NetObs {
    recorder: Option<Arc<dyn Recorder>>,
    node_tx: Vec<Counter>,
    node_rx: Vec<Counter>,
    node_energy: Vec<Gauge>,
    hop_attempts: Counter,
    drops: Counter,
    values_sent: Counter,
    energy_tx: Gauge,
    energy_rx: Gauge,
    energy_overhear: Gauge,
    energy_idle: Gauge,
    energy_cpu: Gauge,
    recovery_gaps: Counter,
    recovery_resyncs: Counter,
    recovery_duplicates: Counter,
    recovery_corrupt: Counter,
    recovery_retx_overflows: Counter,
    recovery_acks: Counter,
    retx_depth: Gauge,
    retx_depth_hist: Histogram,
    ack_rtt_rounds: Histogram,
    decode_batch_ns: Histogram,
    timeline: Timeline,
}

impl NetObs {
    fn new(recorder: Arc<dyn Recorder>, nodes: usize) -> Self {
        let c = |name: String| recorder.counter(&name);
        let g = |name: String| recorder.gauge(&name);
        NetObs {
            recorder: Some(recorder.clone()),
            node_tx: (0..nodes)
                .map(|i| c(format!("sensor_net.node.{i}.tx_values")))
                .collect(),
            node_rx: (0..nodes)
                .map(|i| c(format!("sensor_net.node.{i}.rx_values")))
                .collect(),
            node_energy: (0..nodes)
                .map(|i| g(format!("sensor_net.node.{i}.energy_total")))
                .collect(),
            hop_attempts: c("sensor_net.link.hop_attempts".into()),
            drops: c("sensor_net.link.drops".into()),
            values_sent: c("sensor_net.network.values_sent".into()),
            energy_tx: g("sensor_net.energy.tx".into()),
            energy_rx: g("sensor_net.energy.rx".into()),
            energy_overhear: g("sensor_net.energy.overhear".into()),
            energy_idle: g("sensor_net.energy.idle".into()),
            energy_cpu: g("sensor_net.energy.cpu".into()),
            recovery_gaps: c("sensor_net.recovery.gaps".into()),
            recovery_resyncs: c("sensor_net.recovery.resyncs".into()),
            recovery_duplicates: c("sensor_net.recovery.duplicates".into()),
            recovery_corrupt: c("sensor_net.recovery.corrupt".into()),
            recovery_retx_overflows: c("sensor_net.recovery.retx_overflows".into()),
            recovery_acks: c("sensor_net.recovery.acks".into()),
            retx_depth: g("sensor_net.recovery.retx_depth".into()),
            retx_depth_hist: recorder.histogram("sensor_net.recovery.retx_depth_per_round"),
            ack_rtt_rounds: recorder.histogram("sensor_net.recovery.ack_rtt_rounds"),
            decode_batch_ns: recorder.histogram("sensor_net.station.decode_batch_ns"),
            timeline: Timeline::noop(),
        }
    }

    /// Record one lifecycle event for `frame` into the timeline, mirroring
    /// it to the recorder's trace sink (`sensor_net.timeline.<kind>`) so
    /// `sbr trace` filters can replay it from the log. One branch when no
    /// timeline is attached.
    fn frame_event(&self, node: NodeId, frame: FrameId, kind: EventKind, value: u64) {
        if !self.timeline.is_enabled() {
            return;
        }
        self.timeline.record_value(frame, kind, value);
        if let Some(rec) = &self.recorder {
            rec.emit(
                &format!("sensor_net.timeline.{kind}"),
                None,
                &[
                    ("frame", &frame.to_string()),
                    ("node", &node.to_string()),
                    ("kind", kind.as_str()),
                    ("value", &value.to_string()),
                ],
            );
        }
    }

    /// Count `values` transmitted by `node` (no-op without a recorder —
    /// the per-node vectors are empty then).
    #[inline]
    fn tx(&self, node: NodeId, values: u64) {
        if let Some(c) = self.node_tx.get(node) {
            c.add(values);
        }
    }

    /// Count `values` received by `node` as the addressed recipient.
    #[inline]
    fn rx(&self, node: NodeId, values: u64) {
        if let Some(c) = self.node_rx.get(node) {
            c.add(values);
        }
    }

    /// Publish the per-node and network-wide ledger state as gauges.
    fn set_energy_gauges(&self, ledgers: &[EnergyLedger]) {
        if self.recorder.is_none() {
            return;
        }
        let (mut tx, mut rx, mut oh, mut idle, mut cpu) = (0.0, 0.0, 0.0, 0.0, 0.0);
        for (ledger, gauge) in ledgers.iter().zip(&self.node_energy) {
            gauge.set(ledger.total());
            tx += ledger.tx;
            rx += ledger.rx;
            oh += ledger.overhear;
            idle += ledger.idle;
            cpu += ledger.cpu;
        }
        self.energy_tx.set(tx);
        self.energy_rx.set(rx);
        self.energy_overhear.set(oh);
        self.energy_idle.set(idle);
        self.energy_cpu.set(cpu);
    }
}

/// Per-sensor ARQ bookkeeping for frame-lifecycle attribution: which
/// round each in-flight frame first flew and how many attempts it has
/// cost, keyed by `(epoch, seq)`. Only maintained when a timeline or the
/// ACK-RTT histogram is live (`enabled`), so untraced runs skip the map
/// traffic entirely.
#[derive(Debug, Default)]
struct ArqTrace {
    enabled: bool,
    round: u64,
    attempts: BTreeMap<(u32, u64), u64>,
    first_round: BTreeMap<(u32, u64), u64>,
}

impl ArqTrace {
    fn new(enabled: bool) -> Self {
        ArqTrace {
            enabled,
            ..ArqTrace::default()
        }
    }
}

/// Dissemination strategy for a simulation run.
// A Strategy is built once per simulation and cloned once per node, so the
// size spread against the unit variants (SbrConfig carries its obs handle
// block) costs nothing worth an indirection on every config access.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Transmit every raw value (lossless, maximally expensive).
    Raw,
    /// Per-batch aggregation: each signal is reduced to its average,
    /// minimum and maximum per window of `window` samples.
    Aggregate {
        /// Aggregation window in samples.
        window: usize,
    },
    /// SBR approximation under the given configuration.
    Sbr(SbrConfig),
    /// SBR with the loss-tolerant v2 protocol: sensors keep un-ACKed
    /// frames in a bounded retransmission buffer, the base sends
    /// cumulative ACKs back down the tree, and unrecoverable loss (buffer
    /// overflow, node reboot) degrades gracefully through epoch-bumping
    /// resync frames instead of wedging the stream. Combine with
    /// [`Network::set_fault_plan`] for seeded chaos runs.
    SbrArq(SbrConfig),
}

impl Strategy {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Raw => "raw",
            Strategy::Aggregate { .. } => "aggregate",
            Strategy::Sbr(_) => "sbr",
            Strategy::SbrArq(_) => "sbr-arq",
        }
    }
}

/// What the ARQ/resync machinery did during one [`Strategy::SbrArq`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Frame transmissions attempted end-to-end (includes retransmissions).
    pub frames_sent: u64,
    /// Frames the station accepted and logged (data + resync).
    pub frames_delivered: u64,
    /// Frames the station discarded as already-applied duplicates.
    pub duplicates_discarded: u64,
    /// Frames the station rejected because a predecessor was missing.
    pub gaps_detected: u64,
    /// Frames the station rejected as corrupt (CRC or parse failure).
    pub corrupt_rejected: u64,
    /// Resync frames accepted — each one re-anchored a sensor's stream.
    pub resyncs: u64,
    /// Sensor retransmission-buffer overflows (each forced a resync).
    pub retx_overflows: u64,
    /// Deepest retransmission queue observed on any sensor.
    pub max_retx_depth: usize,
    /// Scheduled node crashes that fired.
    pub crashes: u64,
    /// Cumulative ACK rounds the base sent back down the tree.
    pub acks_sent: u64,
    /// Chunks the sensors flushed (ground-truth count).
    pub chunks_flushed: usize,
    /// Chunks that made it into the station's logs.
    pub chunks_delivered: usize,
}

impl RecoveryStats {
    /// Fraction of flushed chunks that reached the station's logs.
    pub fn delivered_fraction(&self) -> f64 {
        if self.chunks_flushed == 0 {
            1.0
        } else {
            self.chunks_delivered as f64 / self.chunks_flushed as f64
        }
    }
}

/// Outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Strategy label.
    pub strategy: &'static str,
    /// Per-node energy ledgers (index = node id; 0 is the base).
    pub ledgers: Vec<EnergyLedger>,
    /// Values injected at the sensors (before relaying).
    pub values_sent: usize,
    /// Raw values measured across all sensors.
    pub raw_values: usize,
    /// Sum squared reconstruction error at the base station.
    pub sse: f64,
    /// Per-hop transmission attempts (> frames when the link is lossy).
    pub hop_attempts: u64,
    /// Batches dropped after exhausting per-hop retransmissions.
    pub batches_lost: usize,
    /// ARQ/resync statistics — `Some` only for [`Strategy::SbrArq`] runs.
    pub recovery: Option<RecoveryStats>,
}

impl RunReport {
    /// Total energy across the network.
    pub fn total_energy(&self) -> f64 {
        self.ledgers.iter().map(EnergyLedger::total).sum()
    }

    /// Achieved data reduction (transmitted / measured).
    pub fn compression_ratio(&self) -> f64 {
        self.values_sent as f64 / self.raw_values as f64
    }
}

/// A simulated network: topology + energy model + base station.
#[derive(Debug)]
pub struct Network {
    topology: Topology,
    model: EnergyModel,
    ledgers: Vec<EnergyLedger>,
    station: BaseStation,
    link: LossyLink,
    fault_plan: Option<FaultPlan>,
    hop_attempts: u64,
    batches_lost: usize,
    obs: NetObs,
}

impl Network {
    /// Assemble a network over `topology` with the given energy model.
    pub fn new(topology: Topology, model: EnergyModel) -> Self {
        let n = topology.len();
        Network {
            topology,
            model,
            ledgers: vec![EnergyLedger::default(); n],
            station: BaseStation::new(),
            link: LossyLink::reliable(),
            fault_plan: None,
            hop_attempts: 0,
            batches_lost: 0,
            obs: NetObs::default(),
        }
    }

    /// Replace the (default, reliable) link with a lossy one.
    pub fn set_link(&mut self, link: LossyLink) {
        self.link = link;
    }

    /// Install a seeded end-to-end fault schedule for the next
    /// [`Strategy::SbrArq`] run (drops, duplicates, reordering, bit
    /// corruption, scheduled crashes). Consumed by that run; other
    /// strategies ignore it.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.fault_plan = Some(plan);
    }

    /// Attach a metrics/trace recorder. Per-node radio counters
    /// (`sensor_net.node.<i>.tx_values` / `rx_values`), link counters and
    /// energy gauges are registered immediately; SBR runs additionally
    /// thread the recorder into each sensor's encoder so the
    /// `sbr_core.*` pipeline metrics land in the same snapshot.
    pub fn set_recorder(&mut self, recorder: Arc<dyn Recorder>) {
        let timeline = self.obs.timeline.clone();
        self.obs = NetObs::new(recorder.clone(), self.topology.len());
        self.obs.timeline = timeline;
        // The station records query/storage counters on the same sink.
        let station = std::mem::take(&mut self.station);
        self.station = station.with_recorder(recorder.as_ref());
    }

    /// Attach a frame-lifecycle timeline: every v2 frame's
    /// `encoded → queued → tx/retx → … → decoded/persisted` history is
    /// recorded into the bounded ring, and mirrored to the recorder's
    /// trace sink when one is attached. Prefer
    /// [`Timeline::with_recorder`] so ring overflow lands in snapshots as
    /// `obs.timeline.dropped_events`. Never affects delivery — the
    /// differential suites pin the station logs byte-identical with and
    /// without a timeline.
    pub fn set_timeline(&mut self, timeline: Timeline) {
        self.obs.timeline = timeline;
    }

    /// The attached frame-lifecycle timeline (disabled unless
    /// [`Network::set_timeline`] was called).
    pub fn timeline(&self) -> &Timeline {
        &self.obs.timeline
    }

    /// Persist the base station's per-sensor logs as segmented stores
    /// under `dir` (see [`crate::storage`]): every accepted frame is
    /// durably appended during the run, and
    /// [`BaseStation::load`] rebuilds the station afterwards. Replaces
    /// the station, so call before any `simulate`.
    pub fn set_store_dir(
        &mut self,
        dir: impl Into<std::path::PathBuf>,
        segment_bytes: Option<u64>,
    ) {
        let mut station = BaseStation::with_persistence(dir);
        if let Some(bytes) = segment_bytes {
            station = station.with_segment_size(bytes);
        }
        if let Some(recorder) = self.obs.recorder.clone() {
            station = station.with_recorder(recorder.as_ref());
        }
        self.station = station;
    }

    /// The base station (for queries after a run).
    pub fn station(&self) -> &BaseStation {
        &self.station
    }

    /// Charge the radio costs of moving `values` values from `from` to the
    /// base: every hop's sender pays tx (once per ARQ attempt), the
    /// addressed parent pays rx per attempt, every *other* node in the
    /// sender's range pays the same radio cost as overhearing (broadcast,
    /// §3.1), and the receiving parent transmits an ACK back.
    /// Returns `false` when a hop exhausted its retransmissions and the
    /// frame was dropped.
    fn charge_route(&mut self, from: NodeId, values: usize) -> bool {
        let mut sender = from;
        loop {
            let parent = self.topology.parent(sender);
            let outcome = self.link.hop();
            self.hop_attempts += u64::from(outcome.attempts);
            self.obs.hop_attempts.add(u64::from(outcome.attempts));
            for _ in 0..outcome.attempts {
                self.ledgers[sender].charge_tx(&self.model, values);
                self.obs.tx(sender, values as u64);
                for nb in self.topology.neighbors(sender) {
                    if Some(nb) == parent {
                        self.ledgers[nb].charge_rx(&self.model, values);
                        self.obs.rx(nb, values as u64);
                    } else {
                        self.ledgers[nb].charge_overhear(&self.model, values);
                    }
                }
            }
            let Some(parent) = parent else {
                break; // reached only if from == 0
            };
            if !outcome.delivered {
                self.batches_lost += 1;
                self.obs.drops.inc();
                if let Some(rec) = &self.obs.recorder {
                    rec.emit(
                        "sensor_net.link.drop",
                        None,
                        &[
                            ("node", &sender.to_string()),
                            ("values", &values.to_string()),
                        ],
                    );
                }
                return false;
            }
            // Stop-and-wait ACK from the parent.
            self.ledgers[parent].charge_tx(&self.model, self.link.ack_values);
            self.obs.tx(parent, self.link.ack_values as u64);
            self.ledgers[sender].charge_rx(&self.model, self.link.ack_values);
            self.obs.rx(sender, self.link.ack_values as u64);
            sender = parent;
            if sender == 0 {
                break;
            }
        }
        true
    }

    /// Charge (and simulate) a cumulative ACK frame travelling from the
    /// base back down to `to`, hop by hop. Returns `false` if a hop
    /// exhausted its attempts — the sensor then keeps retransmitting and
    /// the station answers the duplicates with the next ACK.
    fn charge_ack_route(&mut self, to: NodeId) -> bool {
        let mut chain = Vec::new();
        let mut child = to;
        while let Some(parent) = self.topology.parent(child) {
            chain.push((parent, child));
            if parent == 0 {
                break;
            }
            child = parent;
        }
        for &(parent, child) in chain.iter().rev() {
            let outcome = self.link.hop();
            self.hop_attempts += u64::from(outcome.attempts);
            self.obs.hop_attempts.add(u64::from(outcome.attempts));
            for _ in 0..outcome.attempts {
                self.ledgers[parent].charge_tx(&self.model, self.link.ack_values);
                self.obs.tx(parent, self.link.ack_values as u64);
                for nb in self.topology.neighbors(parent) {
                    if nb == child {
                        self.ledgers[nb].charge_rx(&self.model, self.link.ack_values);
                        self.obs.rx(nb, self.link.ack_values as u64);
                    } else {
                        self.ledgers[nb].charge_overhear(&self.model, self.link.ack_values);
                    }
                }
            }
            if !outcome.delivered {
                return false;
            }
        }
        true
    }

    /// Hand one arrived frame to the station and fold the verdict into the
    /// recovery statistics. Only genuinely unexpected errors propagate —
    /// gaps, duplicates and corruption are the protocol working as
    /// designed.
    fn deliver(
        &mut self,
        node: NodeId,
        frame: Bytes,
        stats: &mut RecoveryStats,
    ) -> Result<(), SbrError> {
        // Trace identity comes from a header peek, not the full decode: a
        // bit-flipped frame should still be attributable (with whatever
        // garbled identity it now claims) when the station rejects it.
        let id = self
            .obs
            .timeline
            .is_enabled()
            .then(|| codec::peek_v2_identity(&frame))
            .flatten()
            .map(|(_, epoch, seq)| FrameId::new(node as u32, epoch, seq));
        match self.station.receive_frame(node, frame) {
            Ok(Receipt::Accepted) => {
                stats.frames_delivered += 1;
                if let Some(id) = id {
                    self.obs.frame_event(node, id, EventKind::Decoded, 0);
                    self.obs.frame_event(node, id, EventKind::Persisted, 0);
                }
            }
            Ok(Receipt::Resynced) => {
                stats.frames_delivered += 1;
                stats.resyncs += 1;
                self.obs.recovery_resyncs.inc();
                if let Some(id) = id {
                    self.obs.frame_event(node, id, EventKind::Decoded, 0);
                    self.obs.frame_event(node, id, EventKind::Resynced, 0);
                    self.obs.frame_event(node, id, EventKind::Persisted, 0);
                }
            }
            Ok(Receipt::Duplicate) => {
                stats.duplicates_discarded += 1;
                self.obs.recovery_duplicates.inc();
                if let Some(id) = id {
                    self.obs.frame_event(node, id, EventKind::Dup, 0);
                }
            }
            Err(SbrError::Gap { .. }) => {
                stats.gaps_detected += 1;
                self.obs.recovery_gaps.inc();
                // `dropped` with value 1: rejected at the station for a
                // missing predecessor (value 0 = dropped on the link).
                if let Some(id) = id {
                    self.obs.frame_event(node, id, EventKind::Dropped, 1);
                }
            }
            Err(SbrError::Corrupt(_)) => {
                stats.corrupt_rejected += 1;
                self.obs.recovery_corrupt.inc();
                if let Some(id) = id {
                    self.obs.frame_event(node, id, EventKind::Corrupt, 0);
                }
            }
            Err(e) => return Err(e),
        }
        Ok(())
    }

    /// One ARQ round for `sensor`: retransmit everything still pending (in
    /// order, so a healed channel repairs gaps by itself), push each
    /// delivery through the end-to-end fault schedule, then send one
    /// cumulative ACK back down the tree.
    fn arq_round(
        &mut self,
        sensor: &mut SensorNode,
        plan: &mut FaultPlan,
        stats: &mut RecoveryStats,
        trace: &mut ArqTrace,
    ) -> Result<(), SbrError> {
        let node = sensor.id();
        trace.round += 1;
        let pending: Vec<(u32, u64, Bytes)> = sensor
            .pending()
            .map(|p| (p.epoch, p.seq, p.bytes.clone()))
            .collect();
        for (epoch, seq, bytes) in pending {
            stats.frames_sent += 1;
            let id = FrameId::new(node as u32, epoch, seq);
            if trace.enabled {
                let attempts = trace.attempts.entry((epoch, seq)).or_insert(0);
                *attempts += 1;
                if *attempts == 1 {
                    trace.first_round.insert((epoch, seq), trace.round);
                    self.obs.frame_event(node, id, EventKind::Tx, 0);
                } else {
                    self.obs
                        .frame_event(node, id, EventKind::Retx, *attempts - 1);
                }
            }
            // Energy is charged in value units; the v2 frame's wire bytes
            // (header, snapshot, CRC) are what actually crosses the radio.
            let cost = bytes.len().div_ceil(8);
            if !self.charge_route(node, cost) {
                self.obs.frame_event(node, id, EventKind::Dropped, 0);
                continue; // a hop gave up; the frame stays pending
            }
            let arrivals = plan.channel(&bytes);
            // lint:allow(determinism): obs-gated latency probe — timing never feeds decoded output
            let t0 = self.obs.decode_batch_ns.is_enabled().then(Instant::now);
            for arrival in arrivals {
                self.deliver(node, arrival, stats)?;
            }
            if let Some(t0) = t0 {
                self.obs
                    .decode_batch_ns
                    .record(t0.elapsed().as_nanos() as u64);
            }
        }
        stats.acks_sent += 1;
        self.obs.recovery_acks.inc();
        if self.charge_ack_route(node) {
            let ack_epoch = self.station.epoch(node);
            let next_seq = self.station.next_seq(node);
            sensor.ack(ack_epoch, next_seq);
            if trace.enabled {
                // Everything the cumulative ACK covers is done flying:
                // attribute the RTT (in rounds since first transmission)
                // and forget the bookkeeping.
                let acked: Vec<(u32, u64)> = trace
                    .attempts
                    .keys()
                    .copied()
                    .filter(|&(e, s)| e == ack_epoch && s < next_seq)
                    .collect();
                for key in acked {
                    let first = trace.first_round.remove(&key).unwrap_or(trace.round);
                    trace.attempts.remove(&key);
                    let rtt = trace.round - first;
                    self.obs.ack_rtt_rounds.record(rtt);
                    self.obs.frame_event(
                        node,
                        FrameId::new(node as u32, key.0, key.1),
                        EventKind::Acked,
                        rtt,
                    );
                }
            }
        }
        if trace.enabled {
            // Frames abandoned by an epoch bump (overflow, reboot) will
            // never be ACKed; drop their bookkeeping too.
            let current = sensor.epoch();
            trace.attempts.retain(|&(e, _), _| e >= current);
            trace.first_round.retain(|&(e, _), _| e >= current);
        }
        stats.max_retx_depth = stats.max_retx_depth.max(sensor.pending_depth());
        self.obs.retx_depth.set(sensor.pending_depth() as f64);
        self.obs
            .retx_depth_hist
            .record(sensor.pending_depth() as u64);
        Ok(())
    }

    /// Run one strategy over per-sensor feeds.
    ///
    /// `feeds[i]` is the measurement matrix (rows = signals) of node `i+1`;
    /// all feeds must share the same shape. `samples_per_batch` is the
    /// buffer depth `M`. Returns the energy/fidelity report.
    pub fn simulate(
        &mut self,
        feeds: &[Vec<Vec<f64>>],
        samples_per_batch: usize,
        strategy: &Strategy,
    ) -> Result<RunReport, SbrError> {
        assert_eq!(
            feeds.len() + 1,
            self.topology.len(),
            "one feed per non-base node"
        );
        let n_signals = feeds.first().map_or(0, Vec::len);
        let feed_len = feeds.first().and_then(|f| f.first()).map_or(0, Vec::len);
        for (i, feed) in feeds.iter().enumerate() {
            if feed.len() != n_signals || feed.iter().any(|row| row.len() != feed_len) {
                return Err(SbrError::ShapeMismatch {
                    expected_signals: n_signals,
                    expected_len: feed_len,
                    got: (i, feed.first().map_or(0, Vec::len)),
                });
            }
        }
        let usable = (feed_len / samples_per_batch) * samples_per_batch;

        let mut values_sent = 0usize;
        let mut raw_values = 0usize;
        let mut sse = 0.0f64;
        let mut recovery = None;

        match strategy {
            Strategy::Raw => {
                for i in 0..feeds.len() {
                    let node = i + 1;
                    let values = n_signals * usable;
                    raw_values += values;
                    values_sent += values;
                    // One batch per buffer fill, each of n_signals × M values.
                    for _ in 0..usable / samples_per_batch {
                        self.charge_route(node, n_signals * samples_per_batch);
                    }
                    // Raw mode has no reconstruction to lose: a dropped
                    // batch simply leaves a gap the scorer does not model.
                }
            }
            Strategy::Aggregate { window } => {
                let window = (*window).max(1);
                for (i, feed) in feeds.iter().enumerate() {
                    let node = i + 1;
                    raw_values += n_signals * usable;
                    for batch in 0..usable / samples_per_batch {
                        let s = batch * samples_per_batch;
                        let mut batch_values = 0usize;
                        for row in feed {
                            for chunk in row[s..s + samples_per_batch].chunks(window) {
                                let avg = chunk.iter().sum::<f64>() / chunk.len() as f64;
                                batch_values += 3; // avg, min, max
                                for &v in chunk {
                                    sse += (v - avg) * (v - avg);
                                }
                            }
                        }
                        values_sent += batch_values;
                        self.charge_route(node, batch_values);
                    }
                }
            }
            Strategy::Sbr(config) => {
                // Thread the network's recorder into every sensor's encoder
                // so pipeline metrics land in the same snapshot. Never
                // changes what is encoded — only what is measured.
                let mut config = match &self.obs.recorder {
                    Some(rec) => config.clone().with_recorder(rec.clone()),
                    None => config.clone(),
                };
                if self.obs.timeline.is_enabled() {
                    config = config.with_timeline(self.obs.timeline.clone());
                }
                for (i, feed) in feeds.iter().enumerate() {
                    let node = i + 1;
                    let mut sensor =
                        SensorNode::new(node, n_signals, samples_per_batch, config.clone())?;
                    let mut sample = vec![0.0f64; n_signals];
                    for t in 0..usable {
                        for (s, row) in feed.iter().enumerate() {
                            sample[s] = row[t];
                        }
                        raw_values += n_signals;
                        // Compression work is charged per buffered value.
                        self.ledgers[node].charge_cpu(&self.model, n_signals);
                        if let Some(flush) = sensor.record(&sample)? {
                            let cost = flush.transmission.cost();
                            values_sent += cost;
                            // The log format needs every chunk, so the
                            // sensor keeps re-sending an end-to-end-dropped
                            // batch (bounded, then give up loudly).
                            let mut delivered = false;
                            for _ in 0..16 {
                                if self.charge_route(node, cost) {
                                    delivered = true;
                                    break;
                                }
                            }
                            if !delivered {
                                return Err(sbr_core::SbrError::InconsistentState(format!(
                                    "node {node}: batch undeliverable after 16 end-to-end retries"
                                )));
                            }
                            self.station.receive(node, flush.frame)?;
                        }
                    }
                    // Fidelity: replay the log and compare with the truth.
                    let chunks =
                        self.station
                            .reconstruct_chunks(node, 0, self.station.chunk_count(node))?;
                    for (b, chunk) in chunks.iter().enumerate() {
                        let s = b * samples_per_batch;
                        for (row, rec) in feed.iter().zip(chunk) {
                            sse += ErrorMetric::Sse.score(&row[s..s + samples_per_batch], rec);
                        }
                    }
                }
            }
            Strategy::SbrArq(config) => {
                let mut config = match &self.obs.recorder {
                    Some(rec) => config.clone().with_recorder(rec.clone()),
                    None => config.clone(),
                };
                if self.obs.timeline.is_enabled() {
                    config = config.with_timeline(self.obs.timeline.clone());
                }
                // No plan installed = the identity channel (same seed-free
                // determinism as no chaos at all).
                let mut plan = self.fault_plan.take().unwrap_or_else(|| FaultPlan::new(0));
                let mut stats = RecoveryStats::default();
                // How many un-ACKed frames a sensor holds before it gives
                // up on the gapped history and resyncs.
                const RETX_CAPACITY: usize = 16;
                // Rounds of pure retransmission allowed after the feed ends
                // before the run declares whatever is left undeliverable.
                const DRAIN_ROUNDS: usize = 64;
                let tracing =
                    self.obs.timeline.is_enabled() || self.obs.ack_rtt_rounds.is_enabled();
                for (i, feed) in feeds.iter().enumerate() {
                    let node = i + 1;
                    let mut sensor =
                        SensorNode::new(node, n_signals, samples_per_batch, config.clone())?;
                    sensor.enable_arq(RETX_CAPACITY);
                    let mut arq_trace = ArqTrace::new(tracing);
                    // Ground truth per frame identity: what the sensor
                    // actually buffered for (epoch, seq) — survives crashes
                    // shifting chunk boundaries against the feed.
                    let mut truth: HashMap<(u32, u64), Vec<Vec<f64>>> = HashMap::new();
                    let mut window: Vec<Vec<f64>> = vec![Vec::new(); n_signals];
                    let mut sample = vec![0.0f64; n_signals];
                    let mut flushed = 0u64;
                    for t in 0..usable {
                        for (s, row) in feed.iter().enumerate() {
                            sample[s] = row[t];
                            window[s].push(row[t]);
                        }
                        raw_values += n_signals;
                        self.ledgers[node].charge_cpu(&self.model, n_signals);
                        if let Some(flush) = sensor.record(&sample)? {
                            values_sent += flush.frame.len().div_ceil(8);
                            stats.chunks_flushed += 1;
                            truth.insert(
                                (flush.epoch, flush.transmission.seq),
                                std::mem::replace(&mut window, vec![Vec::new(); n_signals]),
                            );
                            let batch = flushed;
                            flushed += 1;
                            self.arq_round(&mut sensor, &mut plan, &mut stats, &mut arq_trace)?;
                            if plan.crash_due(node, batch) {
                                stats.crashes += 1;
                                sensor.reboot()?;
                                // The half-filled buffer died with the node.
                                for row in &mut window {
                                    row.clear();
                                }
                            }
                        }
                    }
                    for _ in 0..DRAIN_ROUNDS {
                        if sensor.pending_depth() == 0 {
                            break;
                        }
                        self.arq_round(&mut sensor, &mut plan, &mut stats, &mut arq_trace)?;
                    }
                    // A frame the channel still holds hostage arrives now.
                    for leftover in plan.drain() {
                        self.deliver(node, leftover, &mut stats)?;
                    }
                    stats.retx_overflows += sensor.retx_overflows();
                    self.obs
                        .recovery_retx_overflows
                        .add(sensor.retx_overflows());
                    // Fidelity over what the station actually logged, each
                    // chunk scored against the exact samples the sensor
                    // buffered for it.
                    let n_logged = self.station.chunk_count(node);
                    if n_logged > 0 {
                        let frames = self.station.frames(node)?;
                        let chunks = self.station.reconstruct_chunks(node, 0, n_logged)?;
                        for (frame, chunk) in frames.iter().zip(&chunks) {
                            let raw = truth
                                .get(&(frame.epoch, frame.tx.seq))
                                // lint:allow(panic-reachability): truth is populated for every frame the sensor emits
                                .expect("every logged frame came from this sensor");
                            for (row, rec) in raw.iter().zip(chunk) {
                                sse += ErrorMetric::Sse.score(row, rec);
                            }
                        }
                    }
                    stats.chunks_delivered += n_logged;
                }
                recovery = Some(stats);
            }
        }

        // Idle listening between flushes: every sensor pays the duty-cycle
        // floor for each batch period, whatever the strategy.
        let periods = usable / samples_per_batch;
        for node in 1..self.topology.len() {
            self.ledgers[node].charge_idle(&self.model, periods);
        }

        self.obs.values_sent.add(values_sent as u64);
        self.obs.set_energy_gauges(&self.ledgers);
        if let Some(rec) = &self.obs.recorder {
            rec.emit(
                "sensor_net.run.complete",
                None,
                &[
                    ("strategy", strategy.label()),
                    ("values_sent", &values_sent.to_string()),
                    ("raw_values", &raw_values.to_string()),
                ],
            );
        }

        Ok(RunReport {
            strategy: strategy.label(),
            ledgers: self.ledgers.clone(),
            values_sent,
            raw_values,
            sse,
            hop_attempts: self.hop_attempts,
            batches_lost: self.batches_lost,
            recovery,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feeds(n_nodes: usize, n_signals: usize, len: usize) -> Vec<Vec<Vec<f64>>> {
        (0..n_nodes)
            .map(|n| {
                (0..n_signals)
                    .map(|s| {
                        (0..len)
                            .map(|t| ((t as f64 * 0.2) + (n * 3 + s) as f64).sin() * 10.0)
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    fn network(nodes: usize) -> Network {
        Network::new(Topology::line(nodes, 1.0), EnergyModel::default())
    }

    #[test]
    fn raw_is_lossless_and_expensive() {
        let mut net = network(3);
        let r = net.simulate(&feeds(2, 2, 64), 32, &Strategy::Raw).unwrap();
        assert_eq!(r.sse, 0.0);
        assert_eq!(r.values_sent, r.raw_values);
        assert!(r.total_energy() > 0.0);
    }

    #[test]
    fn sbr_cuts_energy_versus_raw() {
        let cfg = SbrConfig::new(24, 16);
        let data = feeds(2, 2, 128);
        let raw = network(3).simulate(&data, 64, &Strategy::Raw).unwrap();
        let sbr = network(3).simulate(&data, 64, &Strategy::Sbr(cfg)).unwrap();
        assert!(
            sbr.total_energy() < raw.total_energy() / 2.0,
            "sbr {} vs raw {}",
            sbr.total_energy(),
            raw.total_energy()
        );
        assert!(sbr.compression_ratio() < 0.25);
    }

    #[test]
    fn sbr_beats_aggregation_at_same_or_less_bandwidth() {
        // Give SBR the same value budget aggregation uses and compare error.
        let data = feeds(1, 2, 256);
        let m = 128;
        let window = 32; // aggregation: 3 values per 32 samples per signal
        let agg = network(2)
            .simulate(&data, m, &Strategy::Aggregate { window })
            .unwrap();
        let band_per_batch = agg.values_sent / (256 / m);
        let cfg = SbrConfig::new(band_per_batch, 64);
        let sbr = network(2).simulate(&data, m, &Strategy::Sbr(cfg)).unwrap();
        assert!(sbr.values_sent <= agg.values_sent);
        assert!(
            sbr.sse < agg.sse,
            "sbr sse {} should beat aggregation {}",
            sbr.sse,
            agg.sse
        );
    }

    #[test]
    fn deeper_nodes_cost_more_relay_energy() {
        let mut net = network(4); // chain 0-1-2-3
        net.simulate(&feeds(3, 1, 64), 32, &Strategy::Raw).unwrap();
        // Node 1 relays for 2 and 3, so its tx energy is the largest.
        let tx: Vec<f64> = net.ledgers.iter().map(|l| l.tx).collect();
        assert!(tx[1] > tx[2] && tx[2] > tx[3]);
        // The base transmits only ACKs (1 value per received frame), far
        // below any sensor's data transmissions.
        assert!(tx[0] < tx[3], "base sends only ACKs");
    }

    #[test]
    fn overhearing_charges_neighbors() {
        let mut net = network(3);
        net.simulate(&feeds(2, 1, 32), 32, &Strategy::Raw).unwrap();
        // Node 1's transmissions toward the base are overheard by node 2,
        // which is in range but not the addressee; addressed reception is
        // billed to `rx`, overhearing to `overhear`.
        assert!(net.ledgers[2].overhear > 0.0, "node 2 overhears node 1");
        assert!(net.ledgers[0].rx > 0.0, "base receives addressed frames");
        assert!(
            net.ledgers[1].overhear == 0.0,
            "node 1 is always the addressee on this chain"
        );
    }

    #[test]
    fn idle_floor_is_charged_to_every_sensor() {
        let mut net = network(3);
        net.simulate(&feeds(2, 1, 64), 32, &Strategy::Raw).unwrap();
        let per_period = EnergyModel::default().idle_per_period;
        for node in 1..3 {
            assert_eq!(net.ledgers[node].idle, 2.0 * per_period);
        }
        assert_eq!(net.ledgers[0].idle, 0.0, "base is mains powered");
    }

    #[test]
    fn recorder_collects_per_node_and_pipeline_metrics() {
        use sbr_obs::MetricsRecorder;
        let rec = Arc::new(MetricsRecorder::new());
        let mut net = network(3);
        net.set_recorder(rec.clone());
        let data = feeds(2, 2, 128);
        let report = net
            .simulate(&data, 64, &Strategy::Sbr(SbrConfig::new(48, 32)))
            .unwrap();
        let snap = rec.snapshot();
        // Radio counters: every sensor transmitted, the base received.
        for node in 1..3 {
            let tx = snap
                .counter(&format!("sensor_net.node.{node}.tx_values"))
                .unwrap_or(0);
            assert!(tx > 0, "node {node} must have tx_values");
        }
        assert!(snap.counter("sensor_net.node.0.rx_values").unwrap() > 0);
        assert_eq!(
            snap.counter("sensor_net.network.values_sent"),
            Some(report.values_sent as u64)
        );
        // The recorder was threaded into the encoders: pipeline metrics
        // from sbr-core land in the same snapshot.
        assert!(snap.counter("sbr_core.best_map.calls").unwrap_or(0) > 0);
        // Energy gauges mirror the ledgers.
        let total0 = snap.gauge("sensor_net.node.0.energy_total").unwrap();
        assert!((total0 - net.ledgers[0].total()).abs() < 1e-9);
        assert!(snap.gauge("sensor_net.energy.overhear").unwrap() > 0.0);
        assert!(snap.gauge("sensor_net.energy.idle").unwrap() > 0.0);
    }

    #[test]
    fn ragged_feeds_rejected_not_panicking() {
        let mut net = network(3);
        let mut data = feeds(2, 2, 64);
        data[1][1].truncate(10); // one short row
        let err = net.simulate(&data, 32, &Strategy::Raw).unwrap_err();
        assert!(matches!(err, SbrError::ShapeMismatch { .. }));
    }

    #[test]
    fn lossy_link_costs_more_but_loses_nothing_logically() {
        let data = feeds(2, 2, 128);
        let cfg = SbrConfig::new(48, 32);
        let mut reliable = network(3);
        let r = reliable
            .simulate(&data, 64, &Strategy::Sbr(cfg.clone()))
            .unwrap();
        let mut lossy = network(3);
        lossy.set_link(crate::link::LossyLink::new(0.4, 50, 7));
        let l = lossy.simulate(&data, 64, &Strategy::Sbr(cfg)).unwrap();
        assert!(l.hop_attempts > r.hop_attempts, "ARQ must retry");
        assert!(l.total_energy() > r.total_energy());
        // Same transmissions reach the station either way.
        assert_eq!(
            lossy.station().chunk_count(1),
            reliable.station().chunk_count(1)
        );
        assert!((l.sse - r.sse).abs() < 1e-9, "fidelity unchanged by ARQ");
    }

    #[test]
    fn arq_reliable_link_matches_direct_delivery_byte_for_byte() {
        let data = feeds(2, 2, 256);
        let cfg = SbrConfig::new(48, 32);
        let mut direct = network(3);
        let d = direct
            .simulate(&data, 64, &Strategy::Sbr(cfg.clone()))
            .unwrap();
        let mut arq = network(3);
        let a = arq.simulate(&data, 64, &Strategy::SbrArq(cfg)).unwrap();
        // The ARQ protocol on a perfect channel is invisible: the station
        // logs the exact same bytes the direct path logs.
        for node in 1..3 {
            assert_eq!(
                arq.station().raw_frames(node),
                direct.station().raw_frames(node),
                "node {node} log diverged"
            );
        }
        assert!((a.sse - d.sse).abs() < 1e-12, "fidelity must be unchanged");
        let stats = a.recovery.expect("arq runs report recovery stats");
        assert_eq!(stats.gaps_detected, 0);
        assert_eq!(stats.duplicates_discarded, 0);
        assert_eq!(stats.resyncs, 0);
        assert_eq!(stats.delivered_fraction(), 1.0);
        assert!(d.recovery.is_none(), "direct runs carry no recovery block");
    }

    #[test]
    fn arq_recovers_exactly_under_chaos() {
        let data = feeds(2, 2, 512);
        let cfg = SbrConfig::new(48, 32);
        let mut net = network(3);
        net.set_fault_plan(
            FaultPlan::new(42)
                .with_drop(0.3)
                .with_dup(0.15)
                .with_reorder(0.1)
                .with_corrupt(0.1),
        );
        let r = net
            .simulate(&data, 64, &Strategy::SbrArq(cfg.clone()))
            .unwrap();
        let stats = r.recovery.unwrap();
        assert!(
            stats.duplicates_discarded + stats.gaps_detected + stats.corrupt_rejected > 0,
            "chaos must have bitten: {stats:?}"
        );
        assert!(
            stats.frames_sent > stats.frames_delivered,
            "retransmissions happened"
        );
        // The retransmission buffer outlasted every loss burst, so every
        // flushed chunk was eventually delivered...
        assert_eq!(stats.delivered_fraction(), 1.0, "{stats:?}");
        // ...and the result is bit-for-bit what a perfect channel yields.
        let mut clean = network(3);
        let c = clean.simulate(&data, 64, &Strategy::SbrArq(cfg)).unwrap();
        for node in 1..3 {
            assert_eq!(
                net.station().raw_frames(node),
                clean.station().raw_frames(node)
            );
        }
        assert!((r.sse - c.sse).abs() < 1e-12);
        assert!(r.total_energy() > c.total_energy(), "chaos costs energy");
    }

    #[test]
    fn timeline_under_chaos_is_consistent_with_recovery_stats() {
        use sbr_obs::MetricsRecorder;
        use std::collections::BTreeMap;
        let data = feeds(2, 2, 512);
        let cfg = SbrConfig::new(48, 32);
        let rec = Arc::new(MetricsRecorder::new());
        let mut net = network(3);
        net.set_recorder(rec.clone());
        // Capacity far above the event volume: nothing may be evicted, or
        // the per-frame assertions below would see partial histories.
        net.set_timeline(Timeline::with_recorder(rec.as_ref(), 1 << 20));
        net.set_fault_plan(
            FaultPlan::new(42)
                .with_drop(0.3)
                .with_dup(0.15)
                .with_reorder(0.1)
                .with_corrupt(0.1)
                .with_crash_at(1, 4),
        );
        let r = net.simulate(&data, 64, &Strategy::SbrArq(cfg)).unwrap();
        let stats = r.recovery.unwrap();
        assert!(
            stats.duplicates_discarded > 0 && stats.resyncs > 0,
            "{stats:?}"
        );
        let events = net.timeline().events();
        assert_eq!(net.timeline().dropped_events(), 0, "ring must not wrap");
        let mut by_frame: BTreeMap<FrameId, Vec<&sbr_obs::TimelineEvent>> = BTreeMap::new();
        for e in &events {
            by_frame.entry(e.frame).or_default().push(e);
        }
        // Aggregate consistency: timeline totals equal the RecoveryStats
        // the run reported.
        let count = |k: EventKind| events.iter().filter(|e| e.kind == k).count() as u64;
        assert_eq!(count(EventKind::Dup), stats.duplicates_discarded);
        assert_eq!(count(EventKind::Resynced), stats.resyncs);
        // A bit flip can land in the 17 header bytes the identity peek
        // reads, leaving that rejection unattributable — so `corrupt`
        // events bound the stat from below, and chaos this heavy must
        // still have attributed some.
        assert!(count(EventKind::Corrupt) <= stats.corrupt_rejected);
        assert!(count(EventKind::Corrupt) > 0);
        assert_eq!(
            count(EventKind::Tx) + count(EventKind::Retx),
            stats.frames_sent
        );
        assert_eq!(
            count(EventKind::Decoded),
            stats.frames_delivered,
            "every delivered frame decodes exactly once"
        );
        // Per-frame consistency: ordered histories. A `decoded` frame must
        // have a `tx` strictly before it; every `resynced` verdict must be
        // preceded by its trigger (the resync frame's own `encoded`).
        let mut decoded_frames = 0;
        for (frame, hist) in &by_frame {
            let pos = |k: EventKind| hist.iter().position(|e| e.kind == k);
            if let Some(d) = pos(EventKind::Decoded) {
                decoded_frames += 1;
                let t = pos(EventKind::Tx)
                    .unwrap_or_else(|| panic!("{frame} decoded without tx: {hist:?}"));
                assert!(t < d, "{frame}: decoded before tx: {hist:?}");
                assert!(
                    pos(EventKind::Encoded).unwrap() < t,
                    "{frame}: tx before encoded"
                );
            }
            if let Some(rs) = pos(EventKind::Resynced) {
                let enc = pos(EventKind::Encoded)
                    .unwrap_or_else(|| panic!("{frame} resynced without encoded: {hist:?}"));
                assert!(enc < rs, "{frame}: resynced before its trigger");
            }
        }
        assert_eq!(decoded_frames as u64, stats.frames_delivered);
        // The quantile histograms saw real traffic.
        let snap = rec.snapshot();
        let rtt = snap
            .histogram("sensor_net.recovery.ack_rtt_rounds")
            .unwrap();
        assert!(rtt.count > 0);
        assert!(rtt.p99() >= rtt.p50());
        assert!(
            snap.histogram("sensor_net.recovery.retx_depth_per_round")
                .unwrap()
                .count
                > 0
        );
        assert!(
            snap.histogram("sensor_net.station.decode_batch_ns")
                .unwrap()
                .count
                > 0
        );
        assert_eq!(snap.counter(sbr_obs::TIMELINE_DROPPED_METRIC), Some(0));
    }

    #[test]
    fn timeline_active_changes_no_bytes() {
        use sbr_obs::MetricsRecorder;
        let data = feeds(2, 2, 512);
        let cfg = SbrConfig::new(48, 32);
        let chaos = || {
            FaultPlan::new(42)
                .with_drop(0.3)
                .with_dup(0.15)
                .with_reorder(0.1)
                .with_corrupt(0.1)
        };
        let mut plain = network(3);
        plain.set_fault_plan(chaos());
        let p = plain
            .simulate(&data, 64, &Strategy::SbrArq(cfg.clone()))
            .unwrap();
        let rec = Arc::new(MetricsRecorder::new());
        let mut traced = network(3);
        traced.set_recorder(rec.clone());
        traced.set_timeline(Timeline::with_recorder(rec.as_ref(), 1 << 20));
        traced.set_fault_plan(chaos());
        let t = traced.simulate(&data, 64, &Strategy::SbrArq(cfg)).unwrap();
        // Observation is free of observable effect: identical station
        // logs, byte for byte, and identical recovery stats.
        for node in 1..3 {
            assert_eq!(
                plain.station().raw_frames(node),
                traced.station().raw_frames(node),
                "node {node} log diverged under tracing"
            );
        }
        assert_eq!(p.recovery, t.recovery);
        assert!((p.sse - t.sse).abs() < 1e-12);
        assert!(!traced.timeline().is_empty(), "tracing actually happened");
    }

    #[test]
    fn crash_forces_resync_and_later_chunks_stay_exact() {
        let data = feeds(1, 2, 512);
        let cfg = SbrConfig::new(48, 32);
        let mut net = network(2);
        net.set_fault_plan(FaultPlan::new(7).with_crash_at(1, 3));
        let r = net.simulate(&data, 64, &Strategy::SbrArq(cfg)).unwrap();
        let stats = r.recovery.unwrap();
        assert_eq!(stats.crashes, 1);
        assert!(stats.resyncs >= 1, "reboot must resync");
        assert!(net.station().epoch(1) > 0);
        // Nothing was in flight at the crash (reliable link, instant ACKs),
        // so every flushed chunk is in the log and replays cleanly.
        assert_eq!(stats.delivered_fraction(), 1.0);
        let n = net.station().chunk_count(1);
        let chunks = net.station().reconstruct_chunks(1, 0, n).unwrap();
        assert_eq!(chunks.len(), 8);
    }

    #[test]
    fn recovery_metrics_land_in_snapshot() {
        use sbr_obs::MetricsRecorder;
        let rec = Arc::new(MetricsRecorder::new());
        let mut net = network(2);
        net.set_recorder(rec.clone());
        net.set_fault_plan(FaultPlan::new(9).with_drop(0.3).with_dup(0.2));
        net.simulate(
            &feeds(1, 2, 256),
            64,
            &Strategy::SbrArq(SbrConfig::new(48, 32)),
        )
        .unwrap();
        let snap = rec.snapshot();
        assert!(snap.counter("sensor_net.recovery.acks").unwrap() > 0);
        assert!(snap.counter("sensor_net.recovery.gaps").is_some());
        assert!(snap.counter("sensor_net.recovery.duplicates").is_some());
        assert!(snap.counter("sensor_net.recovery.corrupt").is_some());
        assert!(snap.gauge("sensor_net.recovery.retx_depth").is_some());
        assert!(snap.counter("sbr_core.codec.resync_frames").is_some());
    }

    #[test]
    fn station_answers_historical_queries_after_sbr_run() {
        let data = feeds(2, 2, 128);
        let mut net = network(3);
        net.simulate(&data, 64, &Strategy::Sbr(SbrConfig::new(48, 32)))
            .unwrap();
        let r = net
            .station()
            .reconstruct_signal_range(1, 0, 10, 70)
            .unwrap();
        assert_eq!(r.len(), 60);
    }
}
