//! The network driver: feed every sensor its measurement stream, route each
//! flushed batch up the tree, charge radio energy (including overhearing),
//! and score reconstruction fidelity at the base station.
//!
//! Three dissemination strategies are compared, mirroring the introduction
//! of the paper: sending the **raw** feed, classic per-batch **aggregation**
//! (average/min/max), and **SBR** approximation.

use sbr_core::{ErrorMetric, SbrConfig, SbrError};

use crate::base_station::BaseStation;
use crate::energy::{EnergyLedger, EnergyModel};
use crate::link::LossyLink;
use crate::node::SensorNode;
use crate::topology::Topology;
use crate::NodeId;

/// Dissemination strategy for a simulation run.
#[derive(Debug, Clone)]
pub enum Strategy {
    /// Transmit every raw value (lossless, maximally expensive).
    Raw,
    /// Per-batch aggregation: each signal is reduced to its average,
    /// minimum and maximum per window of `window` samples.
    Aggregate {
        /// Aggregation window in samples.
        window: usize,
    },
    /// SBR approximation under the given configuration.
    Sbr(SbrConfig),
}

impl Strategy {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Raw => "raw",
            Strategy::Aggregate { .. } => "aggregate",
            Strategy::Sbr(_) => "sbr",
        }
    }
}

/// Outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Strategy label.
    pub strategy: &'static str,
    /// Per-node energy ledgers (index = node id; 0 is the base).
    pub ledgers: Vec<EnergyLedger>,
    /// Values injected at the sensors (before relaying).
    pub values_sent: usize,
    /// Raw values measured across all sensors.
    pub raw_values: usize,
    /// Sum squared reconstruction error at the base station.
    pub sse: f64,
    /// Per-hop transmission attempts (> frames when the link is lossy).
    pub hop_attempts: u64,
    /// Batches dropped after exhausting per-hop retransmissions.
    pub batches_lost: usize,
}

impl RunReport {
    /// Total energy across the network.
    pub fn total_energy(&self) -> f64 {
        self.ledgers.iter().map(EnergyLedger::total).sum()
    }

    /// Achieved data reduction (transmitted / measured).
    pub fn compression_ratio(&self) -> f64 {
        self.values_sent as f64 / self.raw_values as f64
    }
}

/// A simulated network: topology + energy model + base station.
#[derive(Debug)]
pub struct Network {
    topology: Topology,
    model: EnergyModel,
    ledgers: Vec<EnergyLedger>,
    station: BaseStation,
    link: LossyLink,
    hop_attempts: u64,
    batches_lost: usize,
}

impl Network {
    /// Assemble a network over `topology` with the given energy model.
    pub fn new(topology: Topology, model: EnergyModel) -> Self {
        let n = topology.len();
        Network {
            topology,
            model,
            ledgers: vec![EnergyLedger::default(); n],
            station: BaseStation::new(),
            link: LossyLink::reliable(),
            hop_attempts: 0,
            batches_lost: 0,
        }
    }

    /// Replace the (default, reliable) link with a lossy one.
    pub fn set_link(&mut self, link: LossyLink) {
        self.link = link;
    }

    /// The base station (for queries after a run).
    pub fn station(&self) -> &BaseStation {
        &self.station
    }

    /// Charge the radio costs of moving `values` values from `from` to the
    /// base: every hop's sender pays tx (once per ARQ attempt), every node
    /// in a sender's range pays rx for every attempt it overhears
    /// (broadcast, §3.1), and the receiving parent transmits an ACK back.
    /// Returns `false` when a hop exhausted its retransmissions and the
    /// frame was dropped.
    fn charge_route(&mut self, from: NodeId, values: usize) -> bool {
        let mut sender = from;
        loop {
            let outcome = self.link.hop();
            self.hop_attempts += u64::from(outcome.attempts);
            for _ in 0..outcome.attempts {
                self.ledgers[sender].charge_tx(&self.model, values);
                for nb in self.topology.neighbors(sender) {
                    self.ledgers[nb].charge_rx(&self.model, values);
                }
            }
            let Some(parent) = self.topology.parent(sender) else {
                break; // reached only if from == 0
            };
            if !outcome.delivered {
                self.batches_lost += 1;
                return false;
            }
            // Stop-and-wait ACK from the parent.
            self.ledgers[parent].charge_tx(&self.model, self.link.ack_values);
            self.ledgers[sender].charge_rx(&self.model, self.link.ack_values);
            sender = parent;
            if sender == 0 {
                break;
            }
        }
        true
    }

    /// Run one strategy over per-sensor feeds.
    ///
    /// `feeds[i]` is the measurement matrix (rows = signals) of node `i+1`;
    /// all feeds must share the same shape. `samples_per_batch` is the
    /// buffer depth `M`. Returns the energy/fidelity report.
    pub fn simulate(
        &mut self,
        feeds: &[Vec<Vec<f64>>],
        samples_per_batch: usize,
        strategy: &Strategy,
    ) -> Result<RunReport, SbrError> {
        assert_eq!(
            feeds.len() + 1,
            self.topology.len(),
            "one feed per non-base node"
        );
        let n_signals = feeds.first().map_or(0, Vec::len);
        let feed_len = feeds.first().and_then(|f| f.first()).map_or(0, Vec::len);
        for (i, feed) in feeds.iter().enumerate() {
            if feed.len() != n_signals || feed.iter().any(|row| row.len() != feed_len) {
                return Err(SbrError::ShapeMismatch {
                    expected_signals: n_signals,
                    expected_len: feed_len,
                    got: (i, feed.first().map_or(0, Vec::len)),
                });
            }
        }
        let usable = (feed_len / samples_per_batch) * samples_per_batch;

        let mut values_sent = 0usize;
        let mut raw_values = 0usize;
        let mut sse = 0.0f64;

        match strategy {
            Strategy::Raw => {
                for i in 0..feeds.len() {
                    let node = i + 1;
                    let values = n_signals * usable;
                    raw_values += values;
                    values_sent += values;
                    // One batch per buffer fill, each of n_signals × M values.
                    for _ in 0..usable / samples_per_batch {
                        self.charge_route(node, n_signals * samples_per_batch);
                    }
                    // Raw mode has no reconstruction to lose: a dropped
                    // batch simply leaves a gap the scorer does not model.
                }
            }
            Strategy::Aggregate { window } => {
                let window = (*window).max(1);
                for (i, feed) in feeds.iter().enumerate() {
                    let node = i + 1;
                    raw_values += n_signals * usable;
                    for batch in 0..usable / samples_per_batch {
                        let s = batch * samples_per_batch;
                        let mut batch_values = 0usize;
                        for row in feed {
                            for chunk in row[s..s + samples_per_batch].chunks(window) {
                                let avg = chunk.iter().sum::<f64>() / chunk.len() as f64;
                                batch_values += 3; // avg, min, max
                                for &v in chunk {
                                    sse += (v - avg) * (v - avg);
                                }
                            }
                        }
                        values_sent += batch_values;
                        self.charge_route(node, batch_values);
                    }
                }
            }
            Strategy::Sbr(config) => {
                for (i, feed) in feeds.iter().enumerate() {
                    let node = i + 1;
                    let mut sensor =
                        SensorNode::new(node, n_signals, samples_per_batch, config.clone())?;
                    let mut sample = vec![0.0f64; n_signals];
                    for t in 0..usable {
                        for (s, row) in feed.iter().enumerate() {
                            sample[s] = row[t];
                        }
                        raw_values += n_signals;
                        // Compression work is charged per buffered value.
                        self.ledgers[node].charge_cpu(&self.model, n_signals);
                        if let Some(flush) = sensor.record(&sample)? {
                            let cost = flush.transmission.cost();
                            values_sent += cost;
                            // The log format needs every chunk, so the
                            // sensor keeps re-sending an end-to-end-dropped
                            // batch (bounded, then give up loudly).
                            let mut delivered = false;
                            for _ in 0..16 {
                                if self.charge_route(node, cost) {
                                    delivered = true;
                                    break;
                                }
                            }
                            if !delivered {
                                return Err(sbr_core::SbrError::InconsistentState(format!(
                                    "node {node}: batch undeliverable after 16 end-to-end retries"
                                )));
                            }
                            self.station.receive(node, flush.frame)?;
                        }
                    }
                    // Fidelity: replay the log and compare with the truth.
                    let chunks =
                        self.station
                            .reconstruct_chunks(node, 0, self.station.chunk_count(node))?;
                    for (b, chunk) in chunks.iter().enumerate() {
                        let s = b * samples_per_batch;
                        for (row, rec) in feed.iter().zip(chunk) {
                            sse += ErrorMetric::Sse.score(&row[s..s + samples_per_batch], rec);
                        }
                    }
                }
            }
        }

        Ok(RunReport {
            strategy: strategy.label(),
            ledgers: self.ledgers.clone(),
            values_sent,
            raw_values,
            sse,
            hop_attempts: self.hop_attempts,
            batches_lost: self.batches_lost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feeds(n_nodes: usize, n_signals: usize, len: usize) -> Vec<Vec<Vec<f64>>> {
        (0..n_nodes)
            .map(|n| {
                (0..n_signals)
                    .map(|s| {
                        (0..len)
                            .map(|t| ((t as f64 * 0.2) + (n * 3 + s) as f64).sin() * 10.0)
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    fn network(nodes: usize) -> Network {
        Network::new(Topology::line(nodes, 1.0), EnergyModel::default())
    }

    #[test]
    fn raw_is_lossless_and_expensive() {
        let mut net = network(3);
        let r = net.simulate(&feeds(2, 2, 64), 32, &Strategy::Raw).unwrap();
        assert_eq!(r.sse, 0.0);
        assert_eq!(r.values_sent, r.raw_values);
        assert!(r.total_energy() > 0.0);
    }

    #[test]
    fn sbr_cuts_energy_versus_raw() {
        let cfg = SbrConfig::new(24, 16);
        let data = feeds(2, 2, 128);
        let raw = network(3).simulate(&data, 64, &Strategy::Raw).unwrap();
        let sbr = network(3).simulate(&data, 64, &Strategy::Sbr(cfg)).unwrap();
        assert!(
            sbr.total_energy() < raw.total_energy() / 2.0,
            "sbr {} vs raw {}",
            sbr.total_energy(),
            raw.total_energy()
        );
        assert!(sbr.compression_ratio() < 0.25);
    }

    #[test]
    fn sbr_beats_aggregation_at_same_or_less_bandwidth() {
        // Give SBR the same value budget aggregation uses and compare error.
        let data = feeds(1, 2, 256);
        let m = 128;
        let window = 32; // aggregation: 3 values per 32 samples per signal
        let agg = network(2)
            .simulate(&data, m, &Strategy::Aggregate { window })
            .unwrap();
        let band_per_batch = agg.values_sent / (256 / m);
        let cfg = SbrConfig::new(band_per_batch, 64);
        let sbr = network(2).simulate(&data, m, &Strategy::Sbr(cfg)).unwrap();
        assert!(sbr.values_sent <= agg.values_sent);
        assert!(
            sbr.sse < agg.sse,
            "sbr sse {} should beat aggregation {}",
            sbr.sse,
            agg.sse
        );
    }

    #[test]
    fn deeper_nodes_cost_more_relay_energy() {
        let mut net = network(4); // chain 0-1-2-3
        net.simulate(&feeds(3, 1, 64), 32, &Strategy::Raw).unwrap();
        // Node 1 relays for 2 and 3, so its tx energy is the largest.
        let tx: Vec<f64> = net.ledgers.iter().map(|l| l.tx).collect();
        assert!(tx[1] > tx[2] && tx[2] > tx[3]);
        // The base transmits only ACKs (1 value per received frame), far
        // below any sensor's data transmissions.
        assert!(tx[0] < tx[3], "base sends only ACKs");
    }

    #[test]
    fn overhearing_charges_neighbors() {
        let mut net = network(3);
        net.simulate(&feeds(2, 1, 32), 32, &Strategy::Raw).unwrap();
        // Node 2's transmissions are overheard by node 1; node 1's by 0 and 2.
        assert!(net.ledgers[2].rx > 0.0, "node 2 overhears node 1");
    }

    #[test]
    fn ragged_feeds_rejected_not_panicking() {
        let mut net = network(3);
        let mut data = feeds(2, 2, 64);
        data[1][1].truncate(10); // one short row
        let err = net.simulate(&data, 32, &Strategy::Raw).unwrap_err();
        assert!(matches!(err, SbrError::ShapeMismatch { .. }));
    }

    #[test]
    fn lossy_link_costs_more_but_loses_nothing_logically() {
        let data = feeds(2, 2, 128);
        let cfg = SbrConfig::new(48, 32);
        let mut reliable = network(3);
        let r = reliable
            .simulate(&data, 64, &Strategy::Sbr(cfg.clone()))
            .unwrap();
        let mut lossy = network(3);
        lossy.set_link(crate::link::LossyLink::new(0.4, 50, 7));
        let l = lossy.simulate(&data, 64, &Strategy::Sbr(cfg)).unwrap();
        assert!(l.hop_attempts > r.hop_attempts, "ARQ must retry");
        assert!(l.total_energy() > r.total_energy());
        // Same transmissions reach the station either way.
        assert_eq!(
            lossy.station().chunk_count(1),
            reliable.station().chunk_count(1)
        );
        assert!((l.sse - r.sse).abs() < 1e-9, "fidelity unchanged by ARQ");
    }

    #[test]
    fn station_answers_historical_queries_after_sbr_run() {
        let data = feeds(2, 2, 128);
        let mut net = network(3);
        net.simulate(&data, 64, &Strategy::Sbr(SbrConfig::new(48, 32)))
            .unwrap();
        let r = net
            .station()
            .reconstruct_signal_range(1, 0, 10, 70)
            .unwrap();
        assert_eq!(r.len(), 60);
    }
}
