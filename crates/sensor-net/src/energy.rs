//! The energy model of §3.1.
//!
//! Costs are expressed in *CPU-instruction equivalents* so the paper's
//! headline ratio is directly encoded: on a Berkeley MICA mote, transmitting
//! one bit costs as much energy as ~1,000 CPU instructions. A value on the
//! wire is a 64-bit word, receiving costs roughly half of transmitting, and
//! broadcast radios make every node within range of a sender pay the
//! receive cost whether or not the message was addressed to it.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Energy cost constants, in CPU-instruction equivalents.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct EnergyModel {
    /// Cost for a node to transmit one value (64 bits × 1000 instr/bit).
    pub tx_per_value: f64,
    /// Cost for a node to receive (or overhear) one value.
    pub rx_per_value: f64,
    /// CPU cost charged per input value compressed (SBR's processing is
    /// thousands of instructions per value — still orders of magnitude
    /// below one hop of radio).
    pub cpu_per_value_compressed: f64,
    /// Cost of keeping the radio in idle listening for one batch period.
    /// Duty-cycled MACs make this small but never zero; it puts a floor
    /// under how far compression alone can stretch the battery.
    #[cfg_attr(feature = "serde", serde(default = "default_idle_per_period"))]
    pub idle_per_period: f64,
}

#[cfg(feature = "serde")]
fn default_idle_per_period() -> f64 {
    1_000.0
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            tx_per_value: 64_000.0,
            rx_per_value: 32_000.0,
            cpu_per_value_compressed: 3_000.0,
            idle_per_period: 1_000.0,
        }
    }
}

/// Per-node energy ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct EnergyLedger {
    /// Instruction-equivalents spent transmitting.
    pub tx: f64,
    /// Instruction-equivalents spent receiving frames addressed to us.
    pub rx: f64,
    /// Instruction-equivalents spent overhearing broadcasts addressed to
    /// someone else (§3.1: every node in a sender's range pays).
    #[cfg_attr(feature = "serde", serde(default))]
    pub overhear: f64,
    /// Instruction-equivalents spent idle-listening between batches.
    #[cfg_attr(feature = "serde", serde(default))]
    pub idle: f64,
    /// Instruction-equivalents spent on local processing.
    pub cpu: f64,
}

impl EnergyLedger {
    /// Total energy spent.
    pub fn total(&self) -> f64 {
        self.tx + self.rx + self.overhear + self.idle + self.cpu
    }

    /// Charge a transmission of `values` values.
    pub fn charge_tx(&mut self, model: &EnergyModel, values: usize) {
        self.tx += model.tx_per_value * values as f64;
    }

    /// Charge a reception of `values` values addressed to this node.
    pub fn charge_rx(&mut self, model: &EnergyModel, values: usize) {
        self.rx += model.rx_per_value * values as f64;
    }

    /// Charge overhearing `values` values addressed to another node. Same
    /// radio cost as [`EnergyLedger::charge_rx`], tracked separately so
    /// reports can show how much of the budget broadcast wastes.
    pub fn charge_overhear(&mut self, model: &EnergyModel, values: usize) {
        self.overhear += model.rx_per_value * values as f64;
    }

    /// Charge `periods` batch periods of idle listening.
    pub fn charge_idle(&mut self, model: &EnergyModel, periods: usize) {
        self.idle += model.idle_per_period * periods as f64;
    }

    /// Charge compression work over `values` input values.
    pub fn charge_cpu(&mut self, model: &EnergyModel, values: usize) {
        self.cpu += model.cpu_per_value_compressed * values as f64;
    }
}

/// Battery + lifetime estimation: §3.1 motivates data reduction with
/// battery capacities growing only 2–3% per year; this turns a ledger into
/// the paper's bottom line — *how much longer does the network live?*
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Battery {
    /// Capacity in CPU-instruction-equivalents (the unit of
    /// [`EnergyModel`]). Two AA cells on a MICA-class mote are on the
    /// order of 1e13 instruction-equivalents.
    pub capacity: f64,
}

impl Default for Battery {
    fn default() -> Self {
        Battery { capacity: 1e13 }
    }
}

impl Battery {
    /// How many *periods* a node survives if each period costs what
    /// `ledger` recorded. Returns `f64::INFINITY` for an idle node.
    pub fn periods(&self, ledger: &EnergyLedger) -> f64 {
        let per_period = ledger.total();
        if per_period <= 0.0 {
            f64::INFINITY
        } else {
            self.capacity / per_period
        }
    }

    /// Network lifetime under the first-node-death criterion: the minimum
    /// over the *sensor* nodes (index 0, the mains-powered base station,
    /// is excluded).
    ///
    /// A network with no sensors — an empty slice, or only the base
    /// station — lives forever: this returns `f64::INFINITY`, never NaN
    /// and never panicking. Ledgers whose totals are NaN (corrupt input)
    /// are skipped rather than poisoning the minimum.
    pub fn network_lifetime(&self, ledgers: &[EnergyLedger]) -> f64 {
        if ledgers.len() <= 1 {
            return f64::INFINITY;
        }
        ledgers
            .iter()
            .skip(1)
            .map(|l| self.periods(l))
            .filter(|p| !p.is_nan())
            .fold(f64::INFINITY, f64::min)
    }

    /// Which sensor dies first (`None` if every sensor is idle).
    pub fn first_to_die(&self, ledgers: &[EnergyLedger]) -> Option<usize> {
        ledgers
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, l)| l.total() > 0.0)
            .min_by(|a, b| self.periods(a.1).total_cmp(&self.periods(b.1)))
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radio_dwarfs_cpu_by_default() {
        let m = EnergyModel::default();
        // Compressing a value then *not* sending it must be far cheaper
        // than sending it raw over even one hop.
        assert!(m.cpu_per_value_compressed * 20.0 < m.tx_per_value);
    }

    #[test]
    fn lifetime_is_min_over_sensors_excluding_base() {
        let m = EnergyModel::default();
        let mut ledgers = vec![EnergyLedger::default(); 4];
        ledgers[0].charge_rx(&m, 1_000_000); // base: busy but irrelevant
        ledgers[1].charge_tx(&m, 10);
        ledgers[2].charge_tx(&m, 100); // hungriest sensor
        ledgers[3].charge_tx(&m, 50);
        let b = Battery {
            capacity: 64_000.0 * 1_000.0,
        };
        assert_eq!(b.first_to_die(&ledgers), Some(2));
        assert!((b.network_lifetime(&ledgers) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn idle_network_lives_forever() {
        let b = Battery::default();
        let ledgers = vec![EnergyLedger::default(); 3];
        assert!(b.network_lifetime(&ledgers).is_infinite());
        assert_eq!(b.first_to_die(&ledgers), None);
    }

    #[test]
    fn ledger_accumulates() {
        let m = EnergyModel::default();
        let mut l = EnergyLedger::default();
        l.charge_tx(&m, 10);
        l.charge_rx(&m, 10);
        l.charge_cpu(&m, 100);
        assert_eq!(l.tx, 640_000.0);
        assert_eq!(l.rx, 320_000.0);
        assert_eq!(l.cpu, 300_000.0);
        assert_eq!(l.total(), 1_260_000.0);
    }

    #[test]
    fn overhear_and_idle_are_tracked_separately_but_count_toward_total() {
        let m = EnergyModel::default();
        let mut l = EnergyLedger::default();
        l.charge_overhear(&m, 10);
        l.charge_idle(&m, 4);
        assert_eq!(l.rx, 0.0, "overhearing is not addressed reception");
        assert_eq!(l.overhear, 320_000.0, "overhearing bills the rx rate");
        assert_eq!(l.idle, 4_000.0);
        assert_eq!(l.total(), 324_000.0);
    }

    #[test]
    fn lifetime_of_empty_or_base_only_network_is_infinite() {
        let b = Battery::default();
        assert!(b.network_lifetime(&[]).is_infinite());
        let mut base = EnergyLedger::default();
        base.charge_rx(&EnergyModel::default(), 1_000);
        assert!(b.network_lifetime(&[base]).is_infinite());
        assert_eq!(b.first_to_die(&[]), None);
    }

    #[test]
    fn lifetime_ignores_nan_ledgers() {
        let b = Battery {
            capacity: 64_000.0 * 100.0,
        };
        let m = EnergyModel::default();
        let mut ledgers = vec![EnergyLedger::default(); 3];
        ledgers[1].tx = f64::NAN;
        ledgers[2].charge_tx(&m, 10);
        let life = b.network_lifetime(&ledgers);
        assert!((life - 10.0).abs() < 1e-9, "NaN ledger skipped, got {life}");
    }
}
