//! The energy model of §3.1.
//!
//! Costs are expressed in *CPU-instruction equivalents* so the paper's
//! headline ratio is directly encoded: on a Berkeley MICA mote, transmitting
//! one bit costs as much energy as ~1,000 CPU instructions. A value on the
//! wire is a 64-bit word, receiving costs roughly half of transmitting, and
//! broadcast radios make every node within range of a sender pay the
//! receive cost whether or not the message was addressed to it.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

/// Energy cost constants, in CPU-instruction equivalents.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct EnergyModel {
    /// Cost for a node to transmit one value (64 bits × 1000 instr/bit).
    pub tx_per_value: f64,
    /// Cost for a node to receive (or overhear) one value.
    pub rx_per_value: f64,
    /// CPU cost charged per input value compressed (SBR's processing is
    /// thousands of instructions per value — still orders of magnitude
    /// below one hop of radio).
    pub cpu_per_value_compressed: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            tx_per_value: 64_000.0,
            rx_per_value: 32_000.0,
            cpu_per_value_compressed: 3_000.0,
        }
    }
}

/// Per-node energy ledger.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct EnergyLedger {
    /// Instruction-equivalents spent transmitting.
    pub tx: f64,
    /// Instruction-equivalents spent receiving/overhearing.
    pub rx: f64,
    /// Instruction-equivalents spent on local processing.
    pub cpu: f64,
}

impl EnergyLedger {
    /// Total energy spent.
    pub fn total(&self) -> f64 {
        self.tx + self.rx + self.cpu
    }

    /// Charge a transmission of `values` values.
    pub fn charge_tx(&mut self, model: &EnergyModel, values: usize) {
        self.tx += model.tx_per_value * values as f64;
    }

    /// Charge a reception/overhearing of `values` values.
    pub fn charge_rx(&mut self, model: &EnergyModel, values: usize) {
        self.rx += model.rx_per_value * values as f64;
    }

    /// Charge compression work over `values` input values.
    pub fn charge_cpu(&mut self, model: &EnergyModel, values: usize) {
        self.cpu += model.cpu_per_value_compressed * values as f64;
    }
}

/// Battery + lifetime estimation: §3.1 motivates data reduction with
/// battery capacities growing only 2–3% per year; this turns a ledger into
/// the paper's bottom line — *how much longer does the network live?*
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct Battery {
    /// Capacity in CPU-instruction-equivalents (the unit of
    /// [`EnergyModel`]). Two AA cells on a MICA-class mote are on the
    /// order of 1e13 instruction-equivalents.
    pub capacity: f64,
}

impl Default for Battery {
    fn default() -> Self {
        Battery { capacity: 1e13 }
    }
}

impl Battery {
    /// How many *periods* a node survives if each period costs what
    /// `ledger` recorded. Returns `f64::INFINITY` for an idle node.
    pub fn periods(&self, ledger: &EnergyLedger) -> f64 {
        let per_period = ledger.total();
        if per_period <= 0.0 {
            f64::INFINITY
        } else {
            self.capacity / per_period
        }
    }

    /// Network lifetime under the first-node-death criterion: the minimum
    /// over the *sensor* nodes (index 0, the mains-powered base station,
    /// is excluded).
    pub fn network_lifetime(&self, ledgers: &[EnergyLedger]) -> f64 {
        ledgers
            .iter()
            .skip(1)
            .map(|l| self.periods(l))
            .fold(f64::INFINITY, f64::min)
    }

    /// Which sensor dies first (`None` if every sensor is idle).
    pub fn first_to_die(&self, ledgers: &[EnergyLedger]) -> Option<usize> {
        ledgers
            .iter()
            .enumerate()
            .skip(1)
            .filter(|(_, l)| l.total() > 0.0)
            .min_by(|a, b| self.periods(a.1).total_cmp(&self.periods(b.1)))
            .map(|(i, _)| i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radio_dwarfs_cpu_by_default() {
        let m = EnergyModel::default();
        // Compressing a value then *not* sending it must be far cheaper
        // than sending it raw over even one hop.
        assert!(m.cpu_per_value_compressed * 20.0 < m.tx_per_value);
    }

    #[test]
    fn lifetime_is_min_over_sensors_excluding_base() {
        let m = EnergyModel::default();
        let mut ledgers = vec![EnergyLedger::default(); 4];
        ledgers[0].charge_rx(&m, 1_000_000); // base: busy but irrelevant
        ledgers[1].charge_tx(&m, 10);
        ledgers[2].charge_tx(&m, 100); // hungriest sensor
        ledgers[3].charge_tx(&m, 50);
        let b = Battery {
            capacity: 64_000.0 * 1_000.0,
        };
        assert_eq!(b.first_to_die(&ledgers), Some(2));
        assert!((b.network_lifetime(&ledgers) - 10.0).abs() < 1e-9);
    }

    #[test]
    fn idle_network_lives_forever() {
        let b = Battery::default();
        let ledgers = vec![EnergyLedger::default(); 3];
        assert!(b.network_lifetime(&ledgers).is_infinite());
        assert_eq!(b.first_to_die(&ledgers), None);
    }

    #[test]
    fn ledger_accumulates() {
        let m = EnergyModel::default();
        let mut l = EnergyLedger::default();
        l.charge_tx(&m, 10);
        l.charge_rx(&m, 10);
        l.charge_cpu(&m, 100);
        assert_eq!(l.tx, 640_000.0);
        assert_eq!(l.rx, 320_000.0);
        assert_eq!(l.cpu, 300_000.0);
        assert_eq!(l.total(), 1_260_000.0);
    }
}
