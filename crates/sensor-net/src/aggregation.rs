//! TAG-style in-network aggregation — the alternative data-reduction
//! paradigm the paper's introduction contrasts with approximation
//! (Madden et al., "TAG: a Tiny AGgregation service", and the
//! aggregation-tree literature of §2).
//!
//! Interior nodes of the routing tree merge their children's *partial
//! state records* before forwarding, so an aggregate over the whole network
//! costs one small record per edge instead of one record per sensor per
//! edge. This module implements the classic decomposable aggregates and
//! the tree evaluation, both to serve as the `Strategy::Aggregate`
//! substrate and to let examples contrast "aggregate everything" with
//! "approximate everything" (SBR's pitch: aggregation is *too* lossy for
//! historical archives).

use crate::topology::Topology;
use crate::NodeId;

/// Partial state record for the decomposable aggregates. All five classic
/// TAG aggregates are derivable from it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Partial {
    /// Number of values merged in.
    pub count: u64,
    /// Sum of values.
    pub sum: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl Partial {
    /// The identity element (merging it changes nothing).
    pub const IDENTITY: Partial = Partial {
        count: 0,
        sum: 0.0,
        min: f64::INFINITY,
        max: f64::NEG_INFINITY,
    };

    /// A record holding one reading.
    pub fn of(v: f64) -> Self {
        Partial {
            count: 1,
            sum: v,
            min: v,
            max: v,
        }
    }

    /// Merge two partials (associative and commutative).
    pub fn merge(self, other: Partial) -> Partial {
        Partial {
            count: self.count + other.count,
            sum: self.sum + other.sum,
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// The average, or `None` for the identity.
    pub fn avg(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Wire size of one record in values (count, sum, min, max).
    pub const COST: usize = 4;
}

/// Result of one epoch of tree aggregation.
#[derive(Debug, Clone)]
pub struct EpochResult {
    /// The network-wide aggregate delivered to the base station.
    pub aggregate: Partial,
    /// Values transmitted per node (one partial per edge, so `COST` for
    /// every non-base node).
    pub values_per_node: Vec<usize>,
    /// Total values over the air.
    pub total_values: usize,
}

/// Run one aggregation epoch: every sensor contributes one reading; each
/// node merges its children's partials with its own and sends one record
/// to its parent. `readings[i]` is the reading of node `i` (`readings[0]`,
/// the base's own reading, is merged locally and costs nothing).
///
/// ```
/// use sensor_net::{aggregation::aggregate_epoch, Topology};
/// let t = Topology::line(4, 1.0);
/// let r = aggregate_epoch(&t, &[0.0, 1.0, 2.0, 3.0]);
/// assert_eq!(r.aggregate.sum, 6.0);
/// assert_eq!(r.aggregate.max, 3.0);
/// ```
pub fn aggregate_epoch(topology: &Topology, readings: &[f64]) -> EpochResult {
    assert_eq!(
        readings.len(),
        topology.len(),
        "one reading per node (including the base)"
    );
    let n = topology.len();
    // Children lists from the parent pointers.
    let mut children: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for node in 1..n {
        let p = topology.parent(node).expect("non-base nodes have parents");
        children[p].push(node);
    }
    // Post-order accumulation (iterative: process nodes by decreasing hop
    // count so children always precede parents).
    let mut order: Vec<NodeId> = (0..n).collect();
    order.sort_by_key(|&v| std::cmp::Reverse(topology.hops(v)));

    let mut partials: Vec<Partial> = readings.iter().map(|&v| Partial::of(v)).collect();
    let mut values_per_node = vec![0usize; n];
    for &node in &order {
        if node == 0 {
            continue;
        }
        let p = topology.parent(node).expect("non-base");
        let own = partials[node];
        partials[p] = partials[p].merge(own);
        values_per_node[node] = Partial::COST;
    }
    EpochResult {
        aggregate: partials[0],
        total_values: values_per_node.iter().sum(),
        values_per_node,
    }
}

/// The naive alternative: every reading is forwarded unaggregated to the
/// base. Returns total values over the air (counting re-transmission at
/// every hop) for comparison.
pub fn flood_cost(topology: &Topology) -> usize {
    (1..topology.len()).map(|v| topology.hops(v)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partial_merge_is_correct_and_associative() {
        let vals = [3.0, -1.0, 7.0, 2.0];
        let merged = vals
            .iter()
            .fold(Partial::IDENTITY, |acc, &v| acc.merge(Partial::of(v)));
        assert_eq!(merged.count, 4);
        assert_eq!(merged.sum, 11.0);
        assert_eq!(merged.min, -1.0);
        assert_eq!(merged.max, 7.0);
        assert_eq!(merged.avg(), Some(2.75));
        // Associativity: ((a·b)·(c·d)) == (((a·b)·c)·d)
        let ab = Partial::of(3.0).merge(Partial::of(-1.0));
        let cd = Partial::of(7.0).merge(Partial::of(2.0));
        assert_eq!(ab.merge(cd), merged);
    }

    #[test]
    fn identity_is_neutral() {
        let p = Partial::of(5.0);
        assert_eq!(p.merge(Partial::IDENTITY), p);
        assert_eq!(Partial::IDENTITY.merge(p), p);
        assert_eq!(Partial::IDENTITY.avg(), None);
    }

    #[test]
    fn epoch_computes_global_aggregate_on_line() {
        let t = Topology::line(5, 1.0);
        let readings = [10.0, 1.0, 2.0, 3.0, 4.0];
        let r = aggregate_epoch(&t, &readings);
        assert_eq!(r.aggregate.count, 5);
        assert_eq!(r.aggregate.sum, 20.0);
        assert_eq!(r.aggregate.min, 1.0);
        assert_eq!(r.aggregate.max, 10.0);
        // One record per non-base node regardless of depth.
        assert_eq!(r.total_values, 4 * Partial::COST);
    }

    #[test]
    fn epoch_works_on_random_trees() {
        let t = Topology::random(30, 10.0, 3.0, 5);
        let readings: Vec<f64> = (0..30).map(|i| i as f64).collect();
        let r = aggregate_epoch(&t, &readings);
        assert_eq!(r.aggregate.count, 30);
        assert_eq!(r.aggregate.sum, (0..30).sum::<i32>() as f64);
        assert_eq!(r.aggregate.min, 0.0);
        assert_eq!(r.aggregate.max, 29.0);
    }

    #[test]
    fn aggregation_beats_flooding_on_deep_trees() {
        // On a chain, flooding costs Θ(n²) value-hops; aggregation Θ(n).
        let t = Topology::line(20, 1.0);
        let per_value_flood = flood_cost(&t); // one value from each node
        let r = aggregate_epoch(&t, &[1.0; 20]);
        assert!(r.total_values < per_value_flood);
    }
}
