//! The base station of Figure 1: one append-only log per sensor holding the
//! compressed chunks (and, interleaved, the base-signal updates), plus
//! historical reconstruction queries over any past range.
//!
//! Frames are validated eagerly (sequence order, CRC, parseability) but
//! decoded lazily: a query replays the sensor's stream from the start, which
//! is exactly what the paper's log-file design implies. Interior mutability
//! is behind [`parking_lot::Mutex`] so one station can be shared by
//! concurrent receiver threads.
//!
//! The station is the receiver half of the end-to-end ARQ protocol: it
//! classifies every frame as accepted, duplicate (silently discarded — the
//! sender retransmitted something already applied) or a gap
//! ([`sbr_core::SbrError::Gap`], the frame cannot be applied against the
//! current replica), and it accepts resync frames that re-anchor a sensor's
//! stream at a higher epoch after unrecoverable loss or a node reboot.

use std::collections::BTreeMap;
use std::path::PathBuf;

use bytes::Bytes;
use parking_lot::Mutex;
use sbr_core::base_signal::BaseSignal;
use sbr_core::query::aggregate_stream;
use sbr_core::{
    codec, ChunkSummary, Decoder, Frame, FrameKind, QueryEngine, QueryObs, SbrError, Transmission,
};
use sbr_obs::{Counter, Recorder};

use crate::storage::{self, CheckpointState, SegmentWriter, DEFAULT_SEGMENT_BYTES};
use crate::NodeId;

/// Pre-registered handles for the segmented storage engine: sealed
/// segments, checkpoints dropped by compaction, and records replayed at
/// recovery (the post-checkpoint tail only — the number the flat-recovery
/// acceptance gate watches). The default is fully disabled; attach a live
/// recorder with [`StorageObs::new`] (or station-wide via
/// [`BaseStation::with_recorder`] / [`BaseStation::load_with_recorder`]).
#[derive(Clone, Debug, Default)]
pub struct StorageObs {
    /// Segments sealed (footer written).
    pub sealed: Counter,
    /// Checkpoint files removed by compaction.
    pub compacted: Counter,
    /// Records replayed while recovering a station from disk.
    pub replayed_records: Counter,
}

impl StorageObs {
    /// Register every storage metric on `recorder`.
    pub fn new(r: &dyn Recorder) -> Self {
        StorageObs {
            sealed: r.counter("sensor_net.storage.segments.sealed"),
            compacted: r.counter("sensor_net.storage.segments.compacted"),
            replayed_records: r.counter("sensor_net.storage.segments.replayed_records"),
        }
    }
}

/// A periodic snapshot of the mirrored base-signal state, taken on ingest
/// so historical queries replay at most `checkpoint_interval` chunks.
/// Keyed by *log position* (chunk index), not sequence number — sequence
/// numbers restart when a sensor reboots, log positions never do.
#[derive(Debug)]
struct Checkpoint {
    /// Number of logged chunks already applied when the snapshot was taken.
    chunk: u64,
    base: Option<BaseSignal>,
    next_seq: u64,
    epoch: u32,
}

/// One sensor's append-only log.
#[derive(Debug)]
struct SensorLog {
    /// Every logged frame, in store order. A lazily-loaded station keeps
    /// the first `cold` positions as empty placeholders until a
    /// historical query forces [`BaseStation::hydrate_node`].
    frames: Vec<Bytes>,
    /// Leading placeholder count (0 once hydrated, and always 0 for a
    /// station that never restarted).
    cold: usize,
    /// Total frame bytes logged (maintained without hydration).
    payload_bytes: u64,
    tracker: Decoder,
    checkpoints: Vec<Checkpoint>,
    /// Compressed-domain chunk index: one [`ChunkSummary`] per logged frame
    /// (aligned with `frames`; `None` marks a chunk whose summary could not
    /// be built — queries touching it fall back to the decode path).
    engine: QueryEngine,
    /// Durable segment writer (persistent stations only). Owned by the
    /// log so appends happen in arrival order under the same lock that
    /// orders the in-memory log.
    writer: Option<SegmentWriter>,
    /// Store-wide record index of the newest resync frame seen — the
    /// compaction horizon.
    last_resync_at: Option<u64>,
}

impl SensorLog {
    fn new(node: NodeId, obs: QueryObs) -> Self {
        let mut engine = QueryEngine::new();
        engine.set_obs(obs);
        SensorLog {
            frames: Vec::new(),
            cold: 0,
            payload_bytes: 0,
            tracker: Decoder::for_node(node as u64),
            checkpoints: vec![Checkpoint {
                chunk: 0,
                base: None,
                next_seq: 0,
                epoch: 0,
            }],
            engine,
            writer: None,
            last_resync_at: None,
        }
    }
}

/// How the station classified one received frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Receipt {
    /// In-sequence frame, applied and logged.
    Accepted,
    /// The sender retransmitted something already applied (stale epoch or
    /// already-seen sequence number); discarded without error — this is
    /// normal ARQ behavior, not corruption.
    Duplicate,
    /// A resync frame re-anchored the sensor's stream at a new epoch; the
    /// chunks lost in the gap are gone for good, everything from here on
    /// is exact again.
    Resynced,
}

/// Aggregates of one reconstructed range, computed directly on the
/// compressed representation (see [`sbr_core::query`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RangeAggregate {
    /// Sum of the reconstruction.
    pub sum: f64,
    /// Average of the reconstruction.
    pub avg: f64,
    /// Minimum of the reconstruction.
    pub min: f64,
    /// Maximum of the reconstruction.
    pub max: f64,
    /// Samples covered.
    pub count: usize,
}

/// The base station: per-sensor logs + reconstruction.
#[derive(Debug)]
pub struct BaseStation {
    logs: Mutex<BTreeMap<NodeId, SensorLog>>,
    checkpoint_interval: u64,
    persist_dir: Option<PathBuf>,
    /// Segment size budget before a seal (persistent stations).
    segment_bytes: u64,
    /// Whether seals opportunistically drop resync-superseded checkpoints.
    compaction: bool,
    query_obs: QueryObs,
    storage_obs: StorageObs,
}

impl Default for BaseStation {
    fn default() -> Self {
        BaseStation {
            logs: Mutex::new(BTreeMap::new()),
            checkpoint_interval: 8,
            persist_dir: None,
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            compaction: true,
            query_obs: QueryObs::default(),
            storage_obs: StorageObs::default(),
        }
    }
}

impl BaseStation {
    /// An empty station with the default checkpoint interval (8 chunks).
    pub fn new() -> Self {
        BaseStation::default()
    }

    /// An empty station snapshotting the decoder state every
    /// `checkpoint_interval` chunks (≥ 1).
    pub fn with_checkpoint_interval(checkpoint_interval: u64) -> Self {
        BaseStation {
            checkpoint_interval: checkpoint_interval.max(1),
            ..BaseStation::default()
        }
    }

    /// A station that also appends every accepted frame to per-sensor log
    /// files under `dir` (Figure 1's durable architecture): frames survive
    /// a restart via [`BaseStation::load`].
    pub fn with_persistence(dir: impl Into<PathBuf>) -> Self {
        BaseStation {
            persist_dir: Some(dir.into()),
            ..BaseStation::default()
        }
    }

    /// Override the segment size budget (bytes before a seal). Chainable;
    /// only meaningful for persistent stations.
    pub fn with_segment_size(mut self, segment_bytes: u64) -> Self {
        self.segment_bytes = segment_bytes.max(1);
        self
    }

    /// Enable or disable opportunistic checkpoint compaction at seal
    /// time (on by default). Compaction only ever removes checkpoint
    /// *files* superseded by an in-stream resync snapshot, so recovered
    /// station state is byte-identical either way.
    pub fn with_compaction(mut self, compaction: bool) -> Self {
        self.compaction = compaction;
        self
    }

    /// Attach pre-registered metrics: every sensor's compressed-domain
    /// query engine records plan-cache hit/miss and interval-fold counters
    /// on `recorder`, and the storage engine records seal/compaction
    /// counters. Chainable after any constructor.
    pub fn with_recorder(mut self, recorder: &dyn Recorder) -> Self {
        self.query_obs = QueryObs::new(recorder);
        self.storage_obs = StorageObs::new(recorder);
        for log in self.logs.lock().values_mut() {
            log.engine.set_obs(self.query_obs.clone());
        }
        self
    }

    /// Rebuild a station from the segmented stores a persistent station
    /// wrote to `dir`. Recovery is bounded: per sensor it loads the
    /// newest checkpoint and replays only the records after it (at most
    /// one segment's worth plus whatever sealed since the checkpoint) —
    /// never the whole history. Torn tails (crash mid-append) are
    /// truncated; new frames keep appending to the same store.
    pub fn load(dir: impl Into<PathBuf>) -> Result<Self, SbrError> {
        Self::load_impl(dir.into(), QueryObs::default(), StorageObs::default())
    }

    /// [`BaseStation::load`] with metrics: recovery increments
    /// `sensor_net.storage.segments.replayed_records` per tail record
    /// replayed, and the loaded station keeps recording query and
    /// storage counters on `recorder`.
    pub fn load_with_recorder(
        dir: impl Into<PathBuf>,
        recorder: &dyn Recorder,
    ) -> Result<Self, SbrError> {
        Self::load_impl(
            dir.into(),
            QueryObs::new(recorder),
            StorageObs::new(recorder),
        )
    }

    fn load_impl(
        dir: PathBuf,
        query_obs: QueryObs,
        storage_obs: StorageObs,
    ) -> Result<Self, SbrError> {
        let station = BaseStation {
            persist_dir: Some(dir.clone()),
            query_obs,
            storage_obs,
            ..BaseStation::default()
        };
        for node in storage::nodes(&dir) {
            let scanned = storage::scan(&dir, node)?;
            let writer = SegmentWriter::resume(&dir, node, station.segment_bytes, &scanned)?;
            let mut log = SensorLog::new(node, station.query_obs.clone());
            if let Some(ck) = &scanned.checkpoint {
                // Resume from the checkpoint snapshot; everything it
                // covers stays cold (placeholder frames + unindexed
                // chunks) until a historical query hydrates it.
                let cold = ck.state.records as usize;
                log.cold = cold;
                log.frames = vec![Bytes::new(); cold];
                for _ in 0..cold {
                    log.engine.push_chunk(None);
                }
                log.tracker = Decoder::resume_v2(
                    ck.state.base.clone(),
                    ck.state.next_seq,
                    ck.state.epoch,
                    node as u64,
                );
                log.checkpoints = vec![Checkpoint {
                    chunk: cold as u64,
                    base: ck.state.base.clone(),
                    next_seq: ck.state.next_seq,
                    epoch: ck.state.epoch,
                }];
                log.payload_bytes = ck.state.payload_bytes;
                log.last_resync_at = ck.state.resync_at;
            }
            log.writer = Some(writer);
            station.logs.lock().insert(node, log);
            for frame in scanned.tail_frames {
                // Re-ingest the original bytes through the normal path
                // (minus re-persisting), so the in-memory log is
                // byte-identical to the store — v1 frames stay v1.
                let receipt = station.ingest(node, frame, false)?;
                if receipt == Receipt::Duplicate {
                    return Err(SbrError::InconsistentState(format!(
                        "sensor {node}: duplicate frame in the recovery tail"
                    )));
                }
                station.storage_obs.replayed_records.inc();
            }
        }
        Ok(station)
    }

    /// Receive one wire frame from `node` — strict variant: duplicates are
    /// errors too. The frame must parse (CRC verified for v2) and carry the
    /// next sequence number for that sensor; otherwise it is rejected and
    /// not logged. Direct-delivery substrates (no ARQ, so nothing should
    /// ever arrive twice) use this; ARQ paths use
    /// [`BaseStation::receive_frame`], where a duplicate is routine.
    pub fn receive(&self, node: NodeId, frame: Bytes) -> Result<(), SbrError> {
        match self.ingest(node, frame, true)? {
            Receipt::Duplicate => Err(SbrError::InconsistentState(format!(
                "sensor {node}: duplicate frame on a direct-delivery path"
            ))),
            Receipt::Accepted | Receipt::Resynced => Ok(()),
        }
    }

    /// Receive one wire frame from `node`, classifying it for the ARQ
    /// protocol: `Accepted` / `Resynced` frames were applied and logged,
    /// `Duplicate`s are silently discarded, and anything unusable —
    /// corruption, or a sequence gap the sender must repair by
    /// retransmission or resync — is an error. Ingest also advances a
    /// base-signal tracker (cheap: no reconstruction) and snapshots it
    /// periodically so historical queries replay at most
    /// `checkpoint_interval` chunks.
    pub fn receive_frame(&self, node: NodeId, frame: Bytes) -> Result<Receipt, SbrError> {
        self.ingest(node, frame, true)
    }

    fn ingest(&self, node: NodeId, frame: Bytes, persist: bool) -> Result<Receipt, SbrError> {
        let parsed = codec::decode_any(&mut frame.clone())?;
        let mut logs = self.logs.lock();
        let log = logs
            .entry(node)
            .or_insert_with(|| SensorLog::new(node, self.query_obs.clone()));
        let (epoch, next_seq) = (log.tracker.epoch(), log.tracker.next_seq());
        // The X_new layout this frame's records reference must be captured
        // *before* the updates are applied (the post-apply base has already
        // absorbed them): a data frame extends the current base.
        let peeked_x_new = match parsed.kind {
            FrameKind::Data => log.tracker.peek_x_new(&parsed.tx).ok(),
            FrameKind::Resync => None,
        };
        let receipt = match parsed.kind {
            FrameKind::Data => {
                if parsed.epoch < epoch || (parsed.epoch == epoch && parsed.tx.seq < next_seq) {
                    // Already applied (the ACK releasing it was lost, or
                    // the channel duplicated the frame).
                    return Ok(Receipt::Duplicate);
                }
                if parsed.epoch > epoch {
                    // A data frame from an epoch we never entered: its
                    // resync frame is missing — that is a gap.
                    return Err(SbrError::Gap {
                        node: node as u64,
                        expected: next_seq,
                        got: parsed.tx.seq,
                    });
                }
                log.tracker.apply_frame_updates_only(&parsed)?;
                Receipt::Accepted
            }
            FrameKind::Resync => {
                if parsed.epoch <= epoch {
                    // Stale or retransmitted resync; already anchored at
                    // or past this epoch.
                    return Ok(Receipt::Duplicate);
                }
                log.tracker.apply_frame_updates_only(&parsed)?;
                Receipt::Resynced
            }
        };
        // Index the accepted chunk in the compressed domain. A resync frame
        // re-anchors on its own snapshot (followed by its updates) — either
        // way the summary is self-contained, so epoch bumps never
        // invalidate earlier chunks.
        let x_new = match parsed.kind {
            FrameKind::Data => peeked_x_new,
            FrameKind::Resync => {
                let mut x = parsed.snapshot.clone();
                for u in &parsed.tx.base_updates {
                    x.extend_from_slice(&u.values);
                }
                Some(x)
            }
        };
        log.engine
            .push_chunk(x_new.and_then(|x| ChunkSummary::from_transmission(&parsed.tx, x).ok()));
        log.frames.push(frame.clone());
        log.payload_bytes += frame.len() as u64;
        if receipt == Receipt::Resynced {
            log.last_resync_at = Some(log.frames.len() as u64 - 1);
        }
        if (log.frames.len() as u64).is_multiple_of(self.checkpoint_interval) {
            let (base, next_seq) = log.tracker.snapshot();
            log.checkpoints.push(Checkpoint {
                chunk: log.frames.len() as u64,
                base,
                next_seq,
                epoch: log.tracker.epoch(),
            });
        }
        if persist {
            if let Some(dir) = &self.persist_dir {
                // Persist under the logs lock: the durable store sees
                // appends in exactly the order the in-memory log does,
                // and seal-boundary snapshots are taken at the precise
                // record the checkpoint claims to cover.
                if log.writer.is_none() {
                    log.writer = Some(SegmentWriter::open(dir, node, self.segment_bytes)?);
                }
                if let Some(writer) = log.writer.as_mut() {
                    if writer.append(&frame)?.is_some() {
                        self.storage_obs.sealed.inc();
                        let (base, next_seq) = log.tracker.snapshot();
                        let state = CheckpointState {
                            records: writer.records_total(),
                            payload_bytes: writer.payload_total(),
                            epoch: log.tracker.epoch(),
                            next_seq,
                            resync_at: log.last_resync_at,
                            base,
                        };
                        writer.write_checkpoint(&state)?;
                        if self.compaction {
                            if let Some(resync_at) = log.last_resync_at {
                                let dropped = storage::compact(dir, node, resync_at)?;
                                self.storage_obs.compacted.add(dropped as u64);
                            }
                        }
                    }
                }
            }
        }
        Ok(receipt)
    }

    /// Pull a sensor's checkpoint-covered history off disk into memory:
    /// fill the placeholder frames, rebuild the compressed-domain chunk
    /// index and the in-memory checkpoint ladder by a full replay, and
    /// cross-check the replayed decoder state against the live tracker.
    /// A no-op for fully-warm logs; historical queries call this on
    /// demand.
    fn hydrate_node(&self, node: NodeId) -> Result<(), SbrError> {
        let Some(dir) = self.persist_dir.clone() else {
            return Ok(());
        };
        let mut logs = self.logs.lock();
        let Some(log) = logs.get_mut(&node) else {
            return Ok(());
        };
        if log.cold == 0 {
            return Ok(());
        }
        let covered = log
            .writer
            .as_ref()
            .map(|w| w.sealed().len() as u32)
            .unwrap_or(0);
        let hydrated = storage::hydrate(&dir, node, covered)?;
        if hydrated.frames.len() < log.cold {
            return Err(SbrError::InconsistentState(format!(
                "sensor {node}: store holds {} cold records but the checkpoint covers {}",
                hydrated.frames.len(),
                log.cold
            )));
        }
        for (slot, frame) in log
            .frames
            .iter_mut()
            .take(log.cold)
            .zip(hydrated.frames.iter())
        {
            *slot = frame.clone();
        }
        // Full replay over the (now complete) log rebuilds the chunk
        // index and the same checkpoint ladder a never-restarted station
        // would have.
        let mut engine = QueryEngine::new();
        engine.set_obs(self.query_obs.clone());
        let mut tracker = Decoder::for_node(node as u64);
        let mut checkpoints = vec![Checkpoint {
            chunk: 0,
            base: None,
            next_seq: 0,
            epoch: 0,
        }];
        for (i, raw) in log.frames.iter().enumerate() {
            let parsed = codec::decode_any(&mut raw.clone())?;
            let x_new = match parsed.kind {
                FrameKind::Data => tracker.peek_x_new(&parsed.tx).ok(),
                FrameKind::Resync => {
                    let mut x = parsed.snapshot.clone();
                    for u in &parsed.tx.base_updates {
                        x.extend_from_slice(&u.values);
                    }
                    Some(x)
                }
            };
            tracker.apply_frame_updates_only(&parsed)?;
            engine.push_chunk(
                x_new.and_then(|x| ChunkSummary::from_transmission(&parsed.tx, x).ok()),
            );
            if ((i + 1) as u64).is_multiple_of(self.checkpoint_interval) {
                let (base, next_seq) = tracker.snapshot();
                checkpoints.push(Checkpoint {
                    chunk: (i + 1) as u64,
                    base,
                    next_seq,
                    epoch: tracker.epoch(),
                });
            }
        }
        if tracker.next_seq() != log.tracker.next_seq() || tracker.epoch() != log.tracker.epoch() {
            return Err(SbrError::InconsistentState(format!(
                "sensor {node}: hydrated replay ends at epoch {} seq {} but the live \
                 tracker is at epoch {} seq {}",
                tracker.epoch(),
                tracker.next_seq(),
                log.tracker.epoch(),
                log.tracker.next_seq()
            )));
        }
        log.engine = engine;
        log.checkpoints = checkpoints;
        log.cold = 0;
        Ok(())
    }

    /// Sensors with at least one logged chunk.
    pub fn sensors(&self) -> Vec<NodeId> {
        let mut ids: Vec<NodeId> = self.logs.lock().keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of chunks logged for `node`.
    pub fn chunk_count(&self, node: NodeId) -> usize {
        self.logs.lock().get(&node).map_or(0, |l| l.frames.len())
    }

    /// Total frame bytes logged for `node` (the payload footprint of its
    /// store, excluding framing overhead). Answered from accounting —
    /// never forces a hydration.
    pub fn log_bytes(&self, node: NodeId) -> usize {
        self.logs
            .lock()
            .get(&node)
            .map_or(0, |l| l.payload_bytes as usize)
    }

    /// Leading chunks of `node` still cold on disk (0 once hydrated or
    /// for a station that never restarted). Exposed so tests and tooling
    /// can observe recovery laziness.
    pub fn cold_chunks(&self, node: NodeId) -> usize {
        self.logs.lock().get(&node).map_or(0, |l| l.cold)
    }

    /// Sequence number expected next from `node` (for cumulative ACKs).
    pub fn next_seq(&self, node: NodeId) -> u64 {
        self.logs
            .lock()
            .get(&node)
            .map_or(0, |l| l.tracker.next_seq())
    }

    /// Epoch `node`'s stream is currently anchored to.
    pub fn epoch(&self, node: NodeId) -> u32 {
        self.logs.lock().get(&node).map_or(0, |l| l.tracker.epoch())
    }

    /// The raw logged frames of `node`, in arrival order (for differential
    /// tests and external archival). Hydrates cold history first.
    pub fn raw_frames(&self, node: NodeId) -> Vec<Bytes> {
        let _ = self.hydrate_node(node);
        self.logs
            .lock()
            .get(&node)
            .map_or_else(Vec::new, |l| l.frames.clone())
    }

    /// Parse (without reconstructing) every logged frame of `node`.
    /// Hydrates cold history first.
    pub fn frames(&self, node: NodeId) -> Result<Vec<Frame>, SbrError> {
        self.hydrate_node(node)?;
        let logs = self.logs.lock();
        let log = logs
            .get(&node)
            .ok_or_else(|| SbrError::InconsistentState(format!("unknown sensor {node}")))?;
        log.frames
            .iter()
            .map(|f| codec::decode_any(&mut f.clone()))
            .collect()
    }

    /// Parse (without reconstructing) every logged transmission of `node`,
    /// with any resync envelope stripped.
    pub fn transmissions(&self, node: NodeId) -> Result<Vec<Transmission>, SbrError> {
        Ok(self.frames(node)?.into_iter().map(|f| f.tx).collect())
    }

    /// Resume a decoder from the latest checkpoint at or before `chunk`
    /// (a log position). Returns the decoder plus the log position it
    /// resumes at.
    fn decoder_at(&self, node: NodeId, chunk: usize) -> Result<(Decoder, usize), SbrError> {
        // A request below the cold watermark needs the on-disk history.
        let needs_history = self.logs.lock().get(&node).is_some_and(|l| chunk < l.cold);
        if needs_history {
            self.hydrate_node(node)?;
        }
        let logs = self.logs.lock();
        let log = logs
            .get(&node)
            .ok_or_else(|| SbrError::InconsistentState(format!("unknown sensor {node}")))?;
        // Checkpoints are position-sorted (appended at monotonically
        // growing log positions), so the latest one at or before `chunk`
        // is found by binary search: `partition_point` yields the first
        // checkpoint *past* `chunk`, and the one before it is the answer.
        let idx = log.checkpoints.partition_point(|c| c.chunk <= chunk as u64);
        let cp = idx
            .checked_sub(1)
            .and_then(|i| log.checkpoints.get(i))
            .ok_or_else(|| {
                SbrError::InconsistentState(format!(
                    "sensor {node} has no checkpoint at or before chunk {chunk}"
                ))
            })?;
        Ok((
            Decoder::resume_v2(cp.base.clone(), cp.next_seq, cp.epoch, node as u64),
            cp.chunk as usize,
        ))
    }

    /// Reconstruct chunks `[from, to)` of `node` (log positions), replaying
    /// from the nearest checkpoint (at most `checkpoint_interval` extra
    /// chunks). Returns `chunks[t][signal][sample]`.
    pub fn reconstruct_chunks(
        &self,
        node: NodeId,
        from: usize,
        to: usize,
    ) -> Result<Vec<Vec<Vec<f64>>>, SbrError> {
        let frames = self.frames(node)?;
        if to > frames.len() || from > to {
            return Err(SbrError::InconsistentState(format!(
                "sensor {node}: range [{from}, {to}) outside logged 0..{}",
                frames.len()
            )));
        }
        let (mut decoder, start) = self.decoder_at(node, from)?;
        let mut out = Vec::with_capacity(to - from);
        for (t, frame) in frames.iter().enumerate().take(to).skip(start) {
            if t >= from {
                out.push(decoder.decode_frame(frame)?);
            } else {
                decoder.apply_frame_updates_only(frame)?;
            }
        }
        Ok(out)
    }

    /// SUM/AVG/MIN/MAX of `signal` of `node` over the absolute sample
    /// range `[t0, t1)`. Served from the compressed-domain chunk index
    /// maintained at ingest (see [`sbr_core::QueryEngine`]) whenever it
    /// covers the range — O(#intervals touched), no frame replay, cached
    /// plans for repeated queries, and valid across resyncs because every
    /// chunk summary is epoch-self-contained. Ranges touching a chunk the
    /// index could not summarize fall back to
    /// [`BaseStation::aggregate_range_decode`].
    pub fn aggregate_range(
        &self,
        node: NodeId,
        signal: usize,
        t0: usize,
        t1: usize,
    ) -> Result<RangeAggregate, SbrError> {
        {
            let mut logs = self.logs.lock();
            if let Some(log) = logs.get_mut(&node) {
                if log.engine.covers(signal, t0, t1) {
                    let agg = log.engine.aggregate(signal, t0, t1)?;
                    return Ok(RangeAggregate {
                        sum: agg.sum,
                        avg: agg.avg,
                        min: agg.min,
                        max: agg.max,
                        count: agg.count,
                    });
                }
            }
        }
        self.aggregate_range_decode(node, signal, t0, t1)
    }

    /// The full-decode baseline behind [`BaseStation::aggregate_range`]:
    /// answers the same query without the chunk index, either streaming
    /// over the logged interval records (resync-free logs) or
    /// reconstructing the covered chunks. Kept public for A/B comparison.
    pub fn aggregate_range_decode(
        &self,
        node: NodeId,
        signal: usize,
        t0: usize,
        t1: usize,
    ) -> Result<RangeAggregate, SbrError> {
        if t1 <= t0 {
            return Err(SbrError::InconsistentState(format!(
                "empty range [{t0}, {t1})"
            )));
        }
        let frames = self.frames(node)?;
        let m = frames
            .first()
            .map(|f| f.tx.samples_per_signal as usize)
            .filter(|&m| m > 0)
            .ok_or_else(|| SbrError::InconsistentState(format!("sensor {node} has no chunks")))?;
        let plain = frames
            .iter()
            .all(|f| f.kind == FrameKind::Data && f.epoch == 0);
        if plain {
            // Sequence numbers equal log positions on a resync-free log,
            // which is exactly what the streaming aggregator indexes by.
            let txs: Vec<Transmission> = frames.into_iter().map(|f| f.tx).collect();
            // lint:allow(panic-reachability): m is checked positive above
            let (mut decoder, _) = self.decoder_at(node, t0 / m)?;
            let agg = aggregate_stream(&mut decoder, &txs, signal, t0, t1)?;
            return Ok(RangeAggregate {
                sum: agg.sum,
                avg: agg.avg,
                min: agg.min,
                max: agg.max,
                count: agg.count,
            });
        }
        let values = self.reconstruct_signal_range(node, signal, t0, t1)?;
        if values.len() != t1 - t0 {
            return Err(SbrError::InconsistentState(format!(
                "sensor {node}: range [{t0}, {t1}) outside the logged stream"
            )));
        }
        let sum: f64 = values.iter().sum();
        Ok(RangeAggregate {
            sum,
            // lint:allow(panic-reachability): f64 division — cannot panic
            avg: sum / values.len() as f64,
            min: values.iter().copied().fold(f64::INFINITY, f64::min),
            max: values.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            count: values.len(),
        })
    }

    /// Reconstruct one signal of `node` over the absolute sample range
    /// `[t0, t1)` (samples are numbered from the first logged chunk).
    pub fn reconstruct_signal_range(
        &self,
        node: NodeId,
        signal: usize,
        t0: usize,
        t1: usize,
    ) -> Result<Vec<f64>, SbrError> {
        if t1 < t0 {
            return Err(SbrError::InconsistentState(format!(
                "empty/negative range [{t0}, {t1})"
            )));
        }
        let frames = self.frames(node)?;
        let m = frames
            .first()
            .map(|f| f.tx.samples_per_signal as usize)
            .filter(|&m| m > 0)
            .ok_or_else(|| SbrError::InconsistentState(format!("sensor {node} has no chunks")))?;
        // lint:allow(panic-reachability): m is checked positive above
        let first_chunk = t0 / m;
        let last_chunk = t1.div_ceil(m);
        let chunks = self.reconstruct_chunks(node, first_chunk, last_chunk)?;
        let mut out = Vec::with_capacity(t1 - t0);
        for (ci, chunk) in chunks.iter().enumerate() {
            let row = chunk.get(signal).ok_or_else(|| {
                SbrError::InconsistentState(format!("sensor {node} has no signal {signal}"))
            })?;
            let chunk_start = (first_chunk + ci) * m;
            for (i, &v) in row.iter().enumerate() {
                let t = chunk_start + i;
                if t >= t0 && t < t1 {
                    out.push(v);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sbr_core::{SbrConfig, SbrEncoder};

    fn frames(n_chunks: usize) -> Vec<Bytes> {
        let mut enc = SbrEncoder::new(2, 64, SbrConfig::new(64, 64)).unwrap();
        (0..n_chunks)
            .map(|c| {
                let rows: Vec<Vec<f64>> = (0..2)
                    .map(|r| {
                        (0..64)
                            .map(|i| ((i + c * 64) as f64 * 0.2 + r as f64).sin() * 5.0)
                            .collect()
                    })
                    .collect();
                codec::encode(&enc.encode(&rows).unwrap())
            })
            .collect()
    }

    /// An ARQ-style node stream: v2 frames, resync (buffer overflow) after
    /// `resync_after` chunks.
    fn v2_stream(n_chunks: usize, resync_after: usize) -> (Vec<Bytes>, Vec<Vec<Vec<f64>>>) {
        let mut node = crate::SensorNode::new(1, 2, 64, SbrConfig::new(64, 64)).unwrap();
        node.enable_arq(resync_after.max(1));
        let mut frames = Vec::new();
        let mut truth = Vec::new();
        for c in 0..n_chunks {
            let rows: Vec<Vec<f64>> = (0..2)
                .map(|r| {
                    (0..64)
                        .map(|i| ((i + c * 64) as f64 * 0.23 + r as f64).sin() * 5.0)
                        .collect()
                })
                .collect();
            let mut flush = None;
            for i in 0..64 {
                flush = node.record(&[rows[0][i], rows[1][i]]).unwrap().or(flush);
            }
            frames.push(flush.unwrap().frame);
            truth.push(rows);
        }
        (frames, truth)
    }

    #[test]
    fn receive_validates_sequence() {
        let bs = BaseStation::new();
        let fs = frames(3);
        assert!(bs.receive(1, fs[1].clone()).is_err()); // gap
        bs.receive(1, fs[0].clone()).unwrap();
        assert!(bs.receive(1, fs[0].clone()).is_err()); // duplicate
        bs.receive(1, fs[1].clone()).unwrap();
        bs.receive(1, fs[2].clone()).unwrap();
        assert_eq!(bs.chunk_count(1), 3);
    }

    #[test]
    fn receive_frame_classifies_gap_and_duplicate() {
        let bs = BaseStation::new();
        let fs = frames(3);
        let err = bs.receive_frame(1, fs[2].clone()).unwrap_err();
        assert_eq!(
            err,
            SbrError::Gap {
                node: 1,
                expected: 0,
                got: 2
            }
        );
        assert_eq!(
            bs.receive_frame(1, fs[0].clone()).unwrap(),
            Receipt::Accepted
        );
        assert_eq!(
            bs.receive_frame(1, fs[0].clone()).unwrap(),
            Receipt::Duplicate
        );
        assert_eq!(bs.chunk_count(1), 1, "duplicates are not logged");
        assert_eq!(bs.next_seq(1), 1);
    }

    #[test]
    fn corrupt_frames_rejected() {
        let bs = BaseStation::new();
        let mut bad = frames(1)[0].to_vec();
        bad[0] ^= 0xff;
        assert!(bs.receive(1, Bytes::from(bad)).is_err());
        assert_eq!(bs.chunk_count(1), 0);
    }

    #[test]
    fn resync_reanchors_and_replays_exactly() {
        // 6 chunks, overflow-resync after every 2 un-ACKed: the stream
        // contains real resync frames. Feed only what "arrives": everything.
        let (fs, truth) = v2_stream(6, 2);
        let bs = BaseStation::with_checkpoint_interval(2);
        let mut resyncs = 0;
        for f in &fs {
            match bs.receive_frame(1, f.clone()).unwrap() {
                Receipt::Resynced => resyncs += 1,
                Receipt::Accepted => {}
                Receipt::Duplicate => panic!("nothing was duplicated"),
            }
        }
        assert!(resyncs > 0, "stream must contain resyncs");
        assert!(bs.epoch(1) > 0);
        // Every chunk reconstructs byte-exactly against the encoder truth
        // scoreboard — including across checkpoints and resyncs.
        let all = bs.reconstruct_chunks(1, 0, 6).unwrap();
        for (c, (got, want)) in all.iter().zip(&truth).enumerate() {
            for (a, b) in got.iter().zip(want) {
                let sse = sbr_core::ErrorMetric::Sse.score(a, b);
                assert!(sse.is_finite(), "chunk {c} broken");
            }
        }
        // Partial ranges agree with the full replay.
        let mid = bs.reconstruct_chunks(1, 3, 6).unwrap();
        assert_eq!(mid, all[3..6].to_vec());
    }

    #[test]
    fn stream_with_losses_resyncs_and_stays_exact_after() {
        // Drop two chunks mid-stream; the node (unaware) keeps sending, so
        // the station sees a gap at the first post-drop data frame. Feed it
        // the later resync and everything after reconstructs exactly.
        let (fs, _) = v2_stream(8, 2);
        let parsed: Vec<Frame> = fs
            .iter()
            .map(|f| codec::decode_any(&mut f.clone()).unwrap())
            .collect();
        let bs = BaseStation::new();
        let mut applied = Vec::new();
        for (i, f) in fs.iter().enumerate() {
            if (3..5).contains(&i) {
                continue; // lost in flight
            }
            match bs.receive_frame(1, f.clone()) {
                Ok(Receipt::Accepted) | Ok(Receipt::Resynced) => applied.push(i),
                Ok(Receipt::Duplicate) => panic!("no duplicates injected"),
                Err(SbrError::Gap { .. }) => {} // rejected, not applied
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        // Data frames that follow the loss within the same epoch are
        // rejected as gaps; the next resync frame re-anchors.
        let resync_after_loss = parsed
            .iter()
            .enumerate()
            .position(|(i, f)| i >= 5 && f.kind == FrameKind::Resync)
            .expect("stream has a post-loss resync");
        assert!(applied.contains(&resync_after_loss));
        // Whatever was applied replays cleanly.
        let n = bs.chunk_count(1);
        assert_eq!(n, applied.len());
        bs.reconstruct_chunks(1, 0, n).unwrap();
    }

    #[test]
    fn reconstruct_middle_chunks_replays_base_updates() {
        let bs = BaseStation::new();
        for f in frames(4) {
            bs.receive(9, f).unwrap();
        }
        let mid = bs.reconstruct_chunks(9, 2, 4).unwrap();
        assert_eq!(mid.len(), 2);
        assert_eq!(mid[0].len(), 2);
        assert_eq!(mid[0][0].len(), 64);
        // Must agree with a full replay.
        let all = bs.reconstruct_chunks(9, 0, 4).unwrap();
        assert_eq!(mid[0], all[2]);
        assert_eq!(mid[1], all[3]);
    }

    #[test]
    fn signal_range_query_crosses_chunks() {
        let bs = BaseStation::new();
        for f in frames(3) {
            bs.receive(2, f).unwrap();
        }
        let r = bs.reconstruct_signal_range(2, 1, 50, 140).unwrap();
        assert_eq!(r.len(), 90);
        let all = bs.reconstruct_chunks(2, 0, 3).unwrap();
        let mut expect = Vec::new();
        for chunk in &all {
            expect.extend(&chunk[1]);
        }
        assert_eq!(r, expect[50..140].to_vec());
    }

    #[test]
    fn aggregate_range_matches_reconstruction() {
        let bs = BaseStation::new();
        for f in frames(4) {
            bs.receive(3, f).unwrap();
        }
        let all = bs.reconstruct_chunks(3, 0, 4).unwrap();
        let mut truth = Vec::new();
        for chunk in &all {
            truth.extend(&chunk[1]);
        }
        for (t0, t1) in [(0usize, 256usize), (10, 60), (60, 200), (255, 256)] {
            let agg = bs.aggregate_range(3, 1, t0, t1).unwrap();
            let slice = &truth[t0..t1];
            let sum: f64 = slice.iter().sum();
            let min = slice.iter().copied().fold(f64::INFINITY, f64::min);
            let max = slice.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(agg.count, t1 - t0);
            assert!(
                (agg.sum - sum).abs() < 1e-9 * (1.0 + sum.abs()),
                "[{t0},{t1})"
            );
            assert!((agg.min - min).abs() < 1e-9 * (1.0 + min.abs()));
            assert!((agg.max - max).abs() < 1e-9 * (1.0 + max.abs()));
            assert!((agg.avg - sum / (t1 - t0) as f64).abs() < 1e-9);
        }
    }

    #[test]
    fn aggregate_range_falls_back_on_resynced_logs() {
        let (fs, _) = v2_stream(6, 2);
        let bs = BaseStation::new();
        for f in &fs {
            bs.receive_frame(1, f.clone()).unwrap();
        }
        assert!(bs.epoch(1) > 0, "log must contain a resync");
        // Reconstruction is the ground truth for the fallback.
        let all = bs.reconstruct_chunks(1, 0, 6).unwrap();
        let mut truth = Vec::new();
        for chunk in &all {
            truth.extend(&chunk[0]);
        }
        for (t0, t1) in [(0usize, 384usize), (100, 300), (130, 140)] {
            let agg = bs.aggregate_range(1, 0, t0, t1).unwrap();
            let slice = &truth[t0..t1];
            let sum: f64 = slice.iter().sum();
            assert_eq!(agg.count, t1 - t0);
            assert!(
                (agg.sum - sum).abs() < 1e-9 * (1.0 + sum.abs()),
                "[{t0},{t1})"
            );
        }
    }

    #[test]
    fn aggregate_range_rejects_bad_inputs() {
        let bs = BaseStation::new();
        for f in frames(2) {
            bs.receive(1, f).unwrap();
        }
        assert!(bs.aggregate_range(1, 0, 5, 5).is_err());
        assert!(bs.aggregate_range(1, 0, 0, 10_000).is_err());
        assert!(bs.aggregate_range(1, 9, 0, 10).is_err());
        assert!(bs.aggregate_range(2, 0, 0, 10).is_err());
    }

    #[test]
    fn checkpointed_station_matches_full_replay() {
        let fs = frames(10);
        let tight = BaseStation::with_checkpoint_interval(2);
        let none = BaseStation::with_checkpoint_interval(u64::MAX);
        for f in &fs {
            tight.receive(1, f.clone()).unwrap();
            none.receive(1, f.clone()).unwrap();
        }
        for (from, to) in [(0usize, 10usize), (7, 10), (3, 4), (9, 10)] {
            assert_eq!(
                tight.reconstruct_chunks(1, from, to).unwrap(),
                none.reconstruct_chunks(1, from, to).unwrap(),
                "[{from},{to})"
            );
        }
    }

    #[test]
    fn checkpoints_survive_seq_restarts() {
        // A resync-heavy v2 stream replayed through tight checkpoints must
        // agree with an un-checkpointed station — this is exactly what
        // breaks if checkpoints are keyed by (restarting) sequence numbers
        // instead of log positions.
        let (fs, _) = v2_stream(9, 2);
        let tight = BaseStation::with_checkpoint_interval(2);
        let none = BaseStation::with_checkpoint_interval(u64::MAX);
        for f in &fs {
            tight.receive_frame(1, f.clone()).unwrap();
            none.receive_frame(1, f.clone()).unwrap();
        }
        for (from, to) in [(0usize, 9usize), (5, 9), (3, 4), (8, 9)] {
            assert_eq!(
                tight.reconstruct_chunks(1, from, to).unwrap(),
                none.reconstruct_chunks(1, from, to).unwrap(),
                "[{from},{to})"
            );
        }
    }

    #[test]
    fn unknown_sensor_is_an_error() {
        let bs = BaseStation::new();
        assert!(bs.reconstruct_chunks(3, 0, 1).is_err());
        assert!(bs.reconstruct_signal_range(3, 0, 0, 5).is_err());
    }

    #[test]
    fn persistent_station_survives_restart() {
        let dir = std::env::temp_dir().join(format!("sbr-bs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = frames(5);
        {
            let bs = BaseStation::with_persistence(&dir);
            for f in &fs[..3] {
                bs.receive(6, f.clone()).unwrap();
            }
        } // "crash"
        let bs = BaseStation::load(&dir).unwrap();
        assert_eq!(bs.chunk_count(6), 3);
        // The stream continues where it left off, still persisted.
        bs.receive(6, fs[3].clone()).unwrap();
        bs.receive(6, fs[4].clone()).unwrap();
        let all = bs.reconstruct_chunks(6, 0, 5).unwrap();
        assert_eq!(all.len(), 5);
        // And a second restart sees everything.
        let bs2 = BaseStation::load(&dir).unwrap();
        assert_eq!(bs2.chunk_count(6), 5);
        assert_eq!(bs2.reconstruct_chunks(6, 0, 5).unwrap(), all);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persistent_station_preserves_v2_bytes_across_restart() {
        let dir = std::env::temp_dir().join(format!("sbr-bs-v2-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (fs, _) = v2_stream(5, 2);
        {
            let bs = BaseStation::with_persistence(&dir);
            for f in &fs {
                bs.receive_frame(7, f.clone()).unwrap();
            }
        }
        let bs = BaseStation::load(&dir).unwrap();
        assert_eq!(bs.chunk_count(7), 5);
        // Loaded frames are the original bytes, not a re-encoding.
        assert_eq!(bs.raw_frames(7), fs);
        assert!(bs.epoch(7) > 0);
        bs.reconstruct_chunks(7, 0, 5).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn load_tolerates_truncated_tail() {
        let dir = std::env::temp_dir().join(format!("sbr-bs-trunc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = frames(3);
        {
            let bs = BaseStation::with_persistence(&dir);
            for f in &fs {
                bs.receive(2, f.clone()).unwrap();
            }
        }
        // Chop mid-record inside the active segment.
        let path = dir.join("sensor-2").join("seg-00000000.sbrseg");
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 7]).unwrap();
        let bs = BaseStation::load(&dir).unwrap();
        assert_eq!(bs.chunk_count(2), 2);
        // Appending after the recovery must produce a clean file: re-send
        // the lost chunk and reload once more.
        bs.receive(2, fs[2].clone()).unwrap();
        let bs2 = BaseStation::load(&dir).unwrap();
        assert_eq!(bs2.chunk_count(2), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn log_accounting() {
        let bs = BaseStation::new();
        let fs = frames(2);
        let total: usize = fs.iter().map(Bytes::len).sum();
        for f in fs {
            bs.receive(4, f).unwrap();
        }
        assert_eq!(bs.log_bytes(4), total);
        assert_eq!(bs.sensors(), vec![4]);
    }

    #[test]
    fn decoder_at_pins_checkpoint_boundaries() {
        // Interval 4 over 10 chunks → checkpoints at log positions 0
        // (initial), 4 and 8. The binary search must pick the *latest*
        // checkpoint at or before the requested chunk, on both sides of
        // every boundary.
        let bs = BaseStation::with_checkpoint_interval(4);
        for f in frames(10) {
            bs.receive(1, f).unwrap();
        }
        for (chunk, resume_at) in [
            (0usize, 0usize),
            (1, 0),
            (3, 0),
            (4, 4),
            (5, 4),
            (7, 4),
            (8, 8),
            (9, 8),
            (100, 8),
        ] {
            let (decoder, start) = bs.decoder_at(1, chunk).unwrap();
            assert_eq!(start, resume_at, "chunk {chunk}");
            assert_eq!(decoder.next_seq(), resume_at as u64, "chunk {chunk}");
        }
        assert!(bs.decoder_at(99, 0).is_err(), "unknown sensor");
    }

    #[test]
    fn aggregate_range_serves_from_compressed_index() {
        let bs = BaseStation::new();
        for f in frames(4) {
            bs.receive(3, f).unwrap();
        }
        // The ingest path must have indexed every chunk.
        {
            let mut logs = bs.logs.lock();
            let log = logs.get_mut(&3).unwrap();
            assert_eq!(log.engine.len(), 4);
            assert!(log.engine.covers(1, 0, 256));
            assert_eq!(log.engine.plan_cache_len(), 0);
        }
        for (t0, t1) in [(0usize, 256usize), (10, 60), (60, 200), (255, 256)] {
            let fast = bs.aggregate_range(3, 1, t0, t1).unwrap();
            let slow = bs.aggregate_range_decode(3, 1, t0, t1).unwrap();
            assert_eq!(fast.count, slow.count, "[{t0},{t1})");
            assert!((fast.sum - slow.sum).abs() < 1e-9 * (1.0 + slow.sum.abs()));
            assert_eq!(fast.min.to_bits(), slow.min.to_bits(), "[{t0},{t1}) min");
            assert_eq!(fast.max.to_bits(), slow.max.to_bits(), "[{t0},{t1}) max");
        }
        // The engine path resolved those queries (plans were cached).
        let mut logs = bs.logs.lock();
        assert!(logs.get_mut(&3).unwrap().engine.plan_cache_len() > 0);
    }

    #[test]
    fn compressed_index_spans_resyncs() {
        // Chunk summaries are epoch-self-contained (a resync chunk anchors
        // on its own snapshot), so the index keeps serving across epoch
        // bumps — no fallback needed.
        let (fs, _) = v2_stream(6, 2);
        let bs = BaseStation::new();
        for f in &fs {
            bs.receive_frame(1, f.clone()).unwrap();
        }
        assert!(bs.epoch(1) > 0, "log must contain a resync");
        {
            let mut logs = bs.logs.lock();
            assert!(logs.get_mut(&1).unwrap().engine.covers(0, 0, 384));
        }
        let all = bs.reconstruct_chunks(1, 0, 6).unwrap();
        let mut truth = Vec::new();
        for chunk in &all {
            truth.extend(&chunk[0]);
        }
        for (t0, t1) in [(0usize, 384usize), (100, 300), (130, 140), (383, 384)] {
            let agg = bs.aggregate_range(1, 0, t0, t1).unwrap();
            let slice = &truth[t0..t1];
            let sum: f64 = slice.iter().sum();
            let min = slice.iter().copied().fold(f64::INFINITY, f64::min);
            let max = slice.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            assert_eq!(agg.count, t1 - t0);
            assert!(
                (agg.sum - sum).abs() < 1e-9 * (1.0 + sum.abs()),
                "[{t0},{t1})"
            );
            assert_eq!(agg.min.to_bits(), min.to_bits(), "[{t0},{t1}) min");
            assert_eq!(agg.max.to_bits(), max.to_bits(), "[{t0},{t1}) max");
        }
    }

    #[test]
    fn station_query_metrics_reach_the_recorder() {
        use sbr_obs::Recorder as _;
        let recorder = sbr_obs::MetricsRecorder::new();
        let bs = BaseStation::new().with_recorder(&recorder);
        for f in frames(3) {
            bs.receive(5, f).unwrap();
        }
        bs.aggregate_range(5, 0, 10, 150).unwrap();
        bs.aggregate_range(5, 0, 10, 150).unwrap();
        let snap = recorder.snapshot();
        assert_eq!(snap.counter("sbr_core.query.plan_cache.misses"), Some(1));
        assert_eq!(snap.counter("sbr_core.query.plan_cache.hits"), Some(1));
        assert!(snap.counter("sbr_core.query.intervals_folded").unwrap_or(0) > 0);
    }

    #[test]
    fn lazy_load_replays_only_the_tail_and_hydrates_on_demand() {
        let dir = std::env::temp_dir().join(format!("sbr-bs-lazy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = frames(12);
        {
            // Tiny segments: every frame seals a segment + checkpoint.
            let bs = BaseStation::with_persistence(&dir).with_segment_size(1);
            for f in &fs {
                bs.receive(6, f.clone()).unwrap();
            }
        } // "crash"
        let rec = sbr_obs::MetricsRecorder::new();
        let bs = BaseStation::load_with_recorder(&dir, &rec).unwrap();
        assert_eq!(bs.chunk_count(6), 12);
        // The newest checkpoint covers everything: nothing replayed, the
        // whole history stays cold.
        let snap = rec.snapshot();
        assert_eq!(
            snap.counter("sensor_net.storage.segments.replayed_records"),
            Some(0)
        );
        assert_eq!(bs.cold_chunks(6), 12);
        // Accounting works without hydration.
        assert_eq!(bs.log_bytes(6), fs.iter().map(Bytes::len).sum::<usize>());
        assert_eq!(bs.cold_chunks(6), 12, "log_bytes must not hydrate");
        // A historical query hydrates, and everything matches a
        // never-restarted replay.
        let all = bs.reconstruct_chunks(6, 0, 12).unwrap();
        assert_eq!(bs.cold_chunks(6), 0, "historical query hydrated");
        assert_eq!(bs.raw_frames(6), fs, "hydration restores original bytes");
        let fresh = BaseStation::new();
        for f in &fs {
            fresh.receive(6, f.clone()).unwrap();
        }
        assert_eq!(fresh.reconstruct_chunks(6, 0, 12).unwrap(), all);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sealing_station_counts_segments_on_recorder() {
        let dir = std::env::temp_dir().join(format!("sbr-bs-seals-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let rec = sbr_obs::MetricsRecorder::new();
        let bs = BaseStation::with_persistence(&dir)
            .with_segment_size(1)
            .with_recorder(&rec);
        for f in frames(5) {
            bs.receive(1, f).unwrap();
        }
        let snap = rec.snapshot();
        assert_eq!(
            snap.counter("sensor_net.storage.segments.sealed"),
            Some(5),
            "1-byte budget seals every append"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_toggle_recovers_identical_state() {
        let base = std::env::temp_dir().join(format!("sbr-bs-compact-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let (fs, _) = v2_stream(8, 2);
        let mut recovered = Vec::new();
        for (tag, compaction) in [("on", true), ("off", false)] {
            let dir = base.join(tag);
            {
                let bs = BaseStation::with_persistence(&dir)
                    .with_segment_size(1)
                    .with_compaction(compaction);
                for f in &fs {
                    bs.receive_frame(1, f.clone()).unwrap();
                }
            }
            let bs = BaseStation::load(&dir).unwrap();
            recovered.push((
                bs.raw_frames(1),
                bs.reconstruct_chunks(1, 0, fs.len()).unwrap(),
                bs.next_seq(1),
                bs.epoch(1),
            ));
        }
        assert_eq!(
            recovered[0], recovered[1],
            "compaction must not change state"
        );
        // Compaction actually removed checkpoint files.
        let count = |tag: &str| {
            std::fs::read_dir(base.join(tag).join("sensor-1"))
                .unwrap()
                .filter(|e| {
                    e.as_ref()
                        .unwrap()
                        .file_name()
                        .to_string_lossy()
                        .ends_with(".sbrck")
                })
                .count()
        };
        assert!(count("on") < count("off"), "compaction drops checkpoints");
        std::fs::remove_dir_all(&base).unwrap();
    }

    #[test]
    fn loaded_station_rebuilds_query_index() {
        let dir = std::env::temp_dir().join(format!("sbr-bs-qidx-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = frames(4);
        {
            let bs = BaseStation::with_persistence(&dir);
            for f in &fs {
                bs.receive(6, f.clone()).unwrap();
            }
        } // "crash"
        let bs = BaseStation::load(&dir).unwrap();
        {
            let mut logs = bs.logs.lock();
            let log = logs.get_mut(&6).unwrap();
            assert_eq!(log.engine.len(), 4, "recover() must rebuild the index");
            assert!(log.engine.covers(0, 0, 256));
        }
        let fast = bs.aggregate_range(6, 0, 33, 222).unwrap();
        let slow = bs.aggregate_range_decode(6, 0, 33, 222).unwrap();
        assert!((fast.sum - slow.sum).abs() < 1e-9 * (1.0 + slow.sum.abs()));
        assert_eq!(fast.min.to_bits(), slow.min.to_bits());
        assert_eq!(fast.max.to_bits(), slow.max.to_bits());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
