//! A lossy radio link with per-hop stop-and-wait ARQ.
//!
//! The paper assumes reliable delivery (its base station appends every
//! chunk); real low-power radios drop frames, so the substrate models the
//! standard fix: each hop retransmits until acknowledged, and every
//! attempt — including the lost ones and the ACKs — costs energy. This is
//! what makes compression compound: fewer values ⇒ fewer frames ⇒ fewer
//! losses ⇒ fewer retransmissions.

/// Link parameters.
#[derive(Debug, Clone, Copy)]
pub struct LossyLink {
    /// Probability that one frame transmission attempt is lost.
    pub loss_prob: f64,
    /// Attempts per hop before the frame is declared undeliverable.
    pub max_attempts: u32,
    /// ACK size in values (charged per successful attempt).
    pub ack_values: usize,
    state: u64,
}

/// Outcome of pushing one frame across one hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopOutcome {
    /// Transmission attempts made (≥ 1).
    pub attempts: u32,
    /// Whether the frame got through within `max_attempts`.
    pub delivered: bool,
}

impl LossyLink {
    /// A link dropping each attempt with probability `loss_prob`.
    ///
    /// # Panics
    ///
    /// If `loss_prob` is not in `[0, 1)`. Exactly `1.0` is rejected on
    /// purpose: a link that loses every attempt can never deliver, and
    /// [`LossyLink::expected_attempts`] (`1 / (1 − p)`) would be infinite.
    pub fn new(loss_prob: f64, max_attempts: u32, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&loss_prob),
            "loss probability must be in [0, 1): got {loss_prob} \
             (1.0 is excluded — such a link never delivers)"
        );
        assert!(max_attempts >= 1);
        LossyLink {
            loss_prob,
            max_attempts,
            ack_values: 1,
            state: seed | 1,
        }
    }

    /// A perfectly reliable link.
    pub fn reliable() -> Self {
        LossyLink::new(0.0, 1, 1)
    }

    fn next_uniform(&mut self) -> f64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        (self.state >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Simulate one hop with stop-and-wait ARQ.
    pub fn hop(&mut self) -> HopOutcome {
        for attempt in 1..=self.max_attempts {
            if self.next_uniform() >= self.loss_prob {
                return HopOutcome {
                    attempts: attempt,
                    delivered: true,
                };
            }
        }
        HopOutcome {
            attempts: self.max_attempts,
            delivered: false,
        }
    }

    /// Expected attempts per delivered frame (`1 / (1 − p)`), for sanity
    /// checks and capacity planning.
    pub fn expected_attempts(&self) -> f64 {
        1.0 / (1.0 - self.loss_prob)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_link_always_single_attempt() {
        let mut l = LossyLink::reliable();
        for _ in 0..100 {
            assert_eq!(
                l.hop(),
                HopOutcome {
                    attempts: 1,
                    delivered: true
                }
            );
        }
    }

    #[test]
    fn attempts_track_expected_value() {
        let mut l = LossyLink::new(0.3, 100, 7);
        let n = 20_000;
        let total: u64 = (0..n).map(|_| l.hop().attempts as u64).sum();
        let mean = total as f64 / n as f64;
        let expect = l.expected_attempts();
        assert!(
            (mean - expect).abs() < 0.05 * expect,
            "mean {mean} vs expected {expect}"
        );
    }

    #[test]
    fn max_attempts_bounds_and_fails() {
        let mut l = LossyLink::new(0.95, 3, 11);
        let mut failures = 0;
        for _ in 0..1000 {
            let o = l.hop();
            assert!(o.attempts <= 3);
            if !o.delivered {
                failures += 1;
                assert_eq!(o.attempts, 3);
            }
        }
        // p(fail) = 0.95³ ≈ 0.857.
        assert!(failures > 700, "only {failures} failures");
    }

    #[test]
    fn expected_attempts_finite_across_valid_range() {
        // Both ends of the valid domain: p = 0 needs exactly one attempt,
        // and the largest representable p < 1 still yields a finite mean
        // because 1.0 itself is rejected by the constructor.
        assert_eq!(LossyLink::new(0.0, 1, 1).expected_attempts(), 1.0);
        let almost_one = 1.0 - f64::EPSILON;
        let l = LossyLink::new(almost_one, 1, 1);
        assert!(l.expected_attempts().is_finite());
        assert!(l.expected_attempts() >= 1.0);
    }

    #[test]
    #[should_panic(expected = "1.0 is excluded")]
    fn loss_prob_one_rejected() {
        LossyLink::new(1.0, 1, 1);
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = LossyLink::new(0.4, 10, 99);
        let mut b = LossyLink::new(0.4, 10, 99);
        for _ in 0..50 {
            assert_eq!(a.hop(), b.hop());
        }
    }
}
