//! Network topologies: node positions, radio-range neighbor sets and a
//! greedy geographic routing tree toward the base station (node 0).

use crate::NodeId;

/// An immutable network layout.
#[derive(Debug, Clone)]
pub struct Topology {
    positions: Vec<(f64, f64)>,
    parents: Vec<Option<NodeId>>, // parents[0] = None (base)
    radio_range: f64,
}

impl Topology {
    /// A chain `base ← 1 ← 2 ← … ← n-1`: the worst case for multi-hop
    /// relaying.
    pub fn line(n_nodes: usize, spacing: f64) -> Self {
        assert!(n_nodes >= 1);
        let positions = (0..n_nodes).map(|i| (i as f64 * spacing, 0.0)).collect();
        let parents = (0..n_nodes)
            .map(|i| if i == 0 { None } else { Some(i - 1) })
            .collect();
        Topology {
            positions,
            parents,
            radio_range: spacing * 1.2,
        }
    }

    /// A star: every sensor one hop from the base.
    pub fn star(n_nodes: usize, radius: f64) -> Self {
        assert!(n_nodes >= 1);
        let mut positions = vec![(0.0, 0.0)];
        for i in 1..n_nodes {
            let ang = 2.0 * std::f64::consts::PI * i as f64 / (n_nodes - 1).max(1) as f64;
            positions.push((radius * ang.cos(), radius * ang.sin()));
        }
        let parents = (0..n_nodes)
            .map(|i| if i == 0 { None } else { Some(0) })
            .collect();
        Topology {
            positions,
            parents,
            radio_range: radius * 1.1,
        }
    }

    /// Random uniform deployment in a `side × side` field with the base at
    /// the center. Each node's parent is the closest already-connected node
    /// that is nearer to the base than itself (falling back to the globally
    /// closest connected node), so the tree is always connected regardless
    /// of density. `radio_range` governs overhearing.
    ///
    /// ```
    /// use sensor_net::Topology;
    /// let t = Topology::random(25, 10.0, 2.5, 7);
    /// assert_eq!(t.len(), 25);
    /// // Every node routes to the base.
    /// assert!((0..25).all(|n| t.route(n).last().copied().unwrap_or(0) == 0));
    /// ```
    pub fn random(n_nodes: usize, side: f64, radio_range: f64, seed: u64) -> Self {
        assert!(n_nodes >= 1);
        // Small xorshift so this crate does not need a rand dependency.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let mut positions = vec![(side / 2.0, side / 2.0)];
        for _ in 1..n_nodes {
            positions.push((next() * side, next() * side));
        }

        let dist =
            |a: (f64, f64), b: (f64, f64)| ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt();
        // Connect nodes in order of distance to the base.
        let mut order: Vec<NodeId> = (1..n_nodes).collect();
        order.sort_by(|&a, &b| {
            dist(positions[a], positions[0]).total_cmp(&dist(positions[b], positions[0]))
        });
        let mut parents: Vec<Option<NodeId>> = vec![None; n_nodes];
        let mut connected = vec![0usize];
        for &i in &order {
            let best = connected
                .iter()
                .copied()
                .min_by(|&a, &b| {
                    dist(positions[i], positions[a]).total_cmp(&dist(positions[i], positions[b]))
                })
                // lint:allow(panic-reachability): connected starts with the base, so min_by has a candidate
                .expect("base is always connected");
            parents[i] = Some(best);
            connected.push(i);
        }
        Topology {
            positions,
            parents,
            radio_range,
        }
    }

    /// Number of nodes including the base station.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True for a degenerate base-only layout.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Position of a node.
    pub fn position(&self, n: NodeId) -> (f64, f64) {
        self.positions[n]
    }

    /// Parent on the routing tree (`None` for the base).
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        self.parents[n]
    }

    /// The hop path `n → … → 0`, excluding `n` itself.
    pub fn route(&self, n: NodeId) -> Vec<NodeId> {
        let mut path = Vec::new();
        let mut cur = n;
        while let Some(p) = self.parents[cur] {
            path.push(p);
            cur = p;
            debug_assert!(path.len() <= self.len(), "routing loop");
        }
        path
    }

    /// Number of radio hops from `n` to the base.
    pub fn hops(&self, n: NodeId) -> usize {
        self.route(n).len()
    }

    /// Nodes within radio range of `n` (excluding `n`): the overhearing
    /// set of a broadcast transmission.
    pub fn neighbors(&self, n: NodeId) -> Vec<NodeId> {
        let p = self.positions[n];
        (0..self.len())
            .filter(|&m| m != n)
            .filter(|&m| {
                let q = self.positions[m];
                ((p.0 - q.0).powi(2) + (p.1 - q.1).powi(2)).sqrt() <= self.radio_range
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_hops_grow_linearly() {
        let t = Topology::line(5, 1.0);
        assert_eq!(t.hops(0), 0);
        assert_eq!(t.hops(4), 4);
        assert_eq!(t.route(3), vec![2, 1, 0]);
    }

    #[test]
    fn star_is_single_hop() {
        let t = Topology::star(9, 2.0);
        for n in 1..9 {
            assert_eq!(t.hops(n), 1);
        }
    }

    #[test]
    fn random_tree_is_connected() {
        for seed in 1..6u64 {
            let t = Topology::random(40, 10.0, 2.5, seed);
            for n in 0..t.len() {
                let route = t.route(n);
                assert!(
                    route.last().copied().unwrap_or(0) == 0,
                    "node {n} not rooted"
                );
                assert!(route.len() < t.len());
            }
        }
    }

    #[test]
    fn random_is_deterministic() {
        let a = Topology::random(20, 5.0, 1.0, 7);
        let b = Topology::random(20, 5.0, 1.0, 7);
        for n in 0..20 {
            assert_eq!(a.position(n), b.position(n));
            assert_eq!(a.parent(n), b.parent(n));
        }
    }

    #[test]
    fn neighbors_are_symmetric_and_exclude_self() {
        let t = Topology::random(25, 6.0, 2.0, 3);
        for n in 0..t.len() {
            let nn = t.neighbors(n);
            assert!(!nn.contains(&n));
            for &m in &nn {
                assert!(t.neighbors(m).contains(&n), "asymmetric range {n}↔{m}");
            }
        }
    }

    #[test]
    fn line_neighbors_are_adjacent_only() {
        let t = Topology::line(6, 1.0);
        let nn = t.neighbors(3);
        assert_eq!(nn, vec![2, 4]);
    }
}
