//! Complex FFT kernel: iterative radix-2 for power-of-two lengths plus
//! Bluestein's chirp-z algorithm for arbitrary lengths, giving every
//! transform baseline an `O(n log n)` path regardless of the dataset's
//! chunk sizes (2048, 2560, 3072, 4096, 5120 in the paper's experiments).

use std::ops::{Add, Mul, Sub};

/// A complex number; deliberately minimal — only what the transforms need.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Scale by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}
impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}
impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// In-place forward FFT (`X_k = Σ x_j e^{-2πi jk / n}`). Length must be a
/// power of two.
pub fn fft_pow2(buf: &mut [Complex]) {
    let n = buf.len();
    assert!(
        n.is_power_of_two(),
        "fft_pow2 requires a power-of-two length"
    );
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let shift = n.leading_zeros() + 1;
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if i < j {
            buf.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in buf.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// In-place inverse FFT for power-of-two lengths (includes the `1/n`
/// normalization).
pub fn ifft_pow2(buf: &mut [Complex]) {
    for c in buf.iter_mut() {
        *c = c.conj();
    }
    fft_pow2(buf);
    let inv = 1.0 / buf.len() as f64;
    for c in buf.iter_mut() {
        *c = c.conj().scale(inv);
    }
}

/// Forward DFT of arbitrary length via Bluestein's algorithm:
/// `X_k = Σ x_j e^{-2πi jk / n}` computed as a circular convolution of two
/// chirp sequences carried out with power-of-two FFTs.
pub fn dft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut buf = input.to_vec();
        fft_pow2(&mut buf);
        return buf;
    }
    // Chirp: w_j = e^{-πi j²/n}. Use j² mod 2n to keep the argument small
    // and the chirp exactly periodic.
    let m = (2 * n - 1).next_power_of_two();
    let chirp: Vec<Complex> = (0..n)
        .map(|j| {
            let jj = (j * j) % (2 * n);
            Complex::cis(-std::f64::consts::PI * jj as f64 / n as f64)
        })
        .collect();
    let mut a = vec![Complex::default(); m];
    for j in 0..n {
        a[j] = input[j] * chirp[j];
    }
    let mut b = vec![Complex::default(); m];
    b[0] = chirp[0].conj();
    for j in 1..n {
        let c = chirp[j].conj();
        b[j] = c;
        b[m - j] = c;
    }
    fft_pow2(&mut a);
    fft_pow2(&mut b);
    for (x, y) in a.iter_mut().zip(&b) {
        *x = *x * *y;
    }
    ifft_pow2(&mut a);
    (0..n).map(|k| a[k] * chirp[k]).collect()
}

/// Inverse DFT of arbitrary length (with `1/n` normalization).
pub fn idft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let conj: Vec<Complex> = input.iter().map(|c| c.conj()).collect();
    let inv = 1.0 / n as f64;
    dft(&conj)
        .into_iter()
        .map(|c| c.conj().scale(inv))
        .collect()
}

// ---------------------------------------------------------------------------
// Real-input transforms
// ---------------------------------------------------------------------------

/// Forward FFT of a real signal of power-of-two length `m ≥ 2`, returning
/// only the non-redundant half spectrum `A[0ꓸꓸ=m/2]` (`m/2 + 1` bins; the
/// rest follows from `A[m-k] = conj(A[k])`).
///
/// Internally packs even/odd samples into one complex signal of length
/// `m/2`, so a real transform costs a *half-size* complex FFT plus an
/// `O(m)` untangling pass — the standard trick that makes the
/// cross-correlation kernel in `sbr-core` roughly twice as fast as going
/// through [`fft_pow2`] on a zero-imaginary buffer.
pub fn rfft(signal: &[f64]) -> Vec<Complex> {
    RealFftPlan::new(signal.len()).rfft(signal)
}

/// Inverse of [`rfft`]: reconstruct the real signal of length
/// `m = 2·(spectrum.len() − 1)` from a conjugate-symmetric half spectrum
/// (normalization included — `irfft(rfft(x)) == x` up to roundoff). The
/// imaginary parts of `spectrum[0]` and `spectrum[m/2]` are ignored, as
/// symmetry forces them to zero.
pub fn irfft(spectrum: &[Complex]) -> Vec<f64> {
    let half = spectrum.len().saturating_sub(1);
    assert!(
        half >= 1 && half.is_power_of_two(),
        "irfft requires 2^k + 1 spectrum bins"
    );
    RealFftPlan::new(2 * half).irfft(spectrum)
}

/// Precomputed twiddle tables for repeated real FFTs of one fixed
/// power-of-two size `m`.
///
/// [`rfft`]/[`irfft`] recompute every twiddle factor (a `sin`/`cos` pair
/// per spectrum bin, plus a sequential recurrence per butterfly) on each
/// call. When the same transform size is applied thousands of times — the
/// `sbr-core` cross-correlation kernel runs one forward and one inverse
/// transform per `BestMap` shift sweep — the trigonometry dominates.
/// Building the plan once moves all of it into two tables:
///
/// * `stage`: `e^{-2πik/(m/2)}` for `k < m/4`, indexed with a stride per
///   butterfly stage of the half-size complex FFT, and
/// * `untangle`: `e^{-2πik/m}` for `k < m/2`, used by the even/odd
///   packing that turns one real transform into a half-size complex one.
#[derive(Debug, Clone)]
pub struct RealFftPlan {
    m: usize,
    stage: Vec<Complex>,
    untangle: Vec<Complex>,
}

/// In-place radix-2 FFT over `buf` with the stage twiddles `tw`
/// (`tw[k] = e^{-2πik/n}`, `k < n/2`); `forward == false` runs the inverse
/// transform (twiddles conjugated, `1/n` normalization applied).
fn fft_tabled(buf: &mut [Complex], tw: &[Complex], forward: bool) {
    let n = buf.len();
    debug_assert!(n.is_power_of_two());
    debug_assert_eq!(tw.len(), n / 2);
    if n <= 1 {
        return;
    }
    let shift = n.leading_zeros() + 1;
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if i < j {
            buf.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let stride = n / len;
        let half = len / 2;
        for chunk in buf.chunks_mut(len) {
            for i in 0..half {
                let w = tw[i * stride];
                let w = if forward { w } else { w.conj() };
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
            }
        }
        len <<= 1;
    }
    if !forward {
        let inv = 1.0 / n as f64;
        for c in buf.iter_mut() {
            *c = c.scale(inv);
        }
    }
}

impl RealFftPlan {
    /// Build the tables for real transforms of length `m` (power of two,
    /// at least 2).
    pub fn new(m: usize) -> Self {
        assert!(
            m >= 2 && m.is_power_of_two(),
            "RealFftPlan requires a power-of-two length >= 2"
        );
        let half = m / 2;
        let stage = (0..half / 2)
            .map(|k| Complex::cis(-2.0 * std::f64::consts::PI * k as f64 / half as f64))
            .collect();
        let untangle = (0..half)
            .map(|k| Complex::cis(-std::f64::consts::PI * k as f64 / half as f64))
            .collect();
        RealFftPlan { m, stage, untangle }
    }

    /// The transform length this plan was built for.
    pub fn len(&self) -> usize {
        self.m
    }

    /// Plans are never empty; mirrors [`RealFftPlan::len`] for clippy.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// As [`rfft`], reusing the precomputed tables. `signal.len()` must
    /// equal [`RealFftPlan::len`].
    pub fn rfft(&self, signal: &[f64]) -> Vec<Complex> {
        let m = self.m;
        assert_eq!(signal.len(), m, "rfft input length must match the plan");
        let half = m / 2;
        // z[j] = a[2j] + i·a[2j+1]
        let mut z: Vec<Complex> = (0..half)
            .map(|j| Complex::new(signal[2 * j], signal[2 * j + 1]))
            .collect();
        fft_tabled(&mut z, &self.stage, true);
        // With E/O the half-size transforms of the even/odd samples:
        //   E[k] = (Z[k] + conj(Z[-k]))/2,  O[k] = (Z[k] − conj(Z[-k]))/(2i),
        //   A[k] = E[k] + W^k·O[k],         W = e^{-2πi/m}.
        let mut out = Vec::with_capacity(half + 1);
        for k in 0..half {
            let zk = z[k];
            let zmk = z[(half - k) % half].conj();
            let e = (zk + zmk).scale(0.5);
            let o_t = zk - zmk; // 2i·O[k]
            let o = Complex::new(o_t.im, -o_t.re).scale(0.5); // O[k] = o_t / (2i)
            out.push(e + self.untangle[k] * o);
        }
        // A[m/2] = E[0] − O[0] (W^{m/2} = −1, E and O have period m/2).
        let e0 = z[0].re; // E[0] = Σ even samples (real)
        let o0 = z[0].im; // O[0] = Σ odd samples (real)
        out.push(Complex::new(e0 - o0, 0.0));
        out
    }

    /// As [`irfft`], reusing the precomputed tables. `spectrum.len()` must
    /// equal `len()/2 + 1`.
    pub fn irfft(&self, spectrum: &[Complex]) -> Vec<f64> {
        let half = self.m / 2;
        assert_eq!(
            spectrum.len(),
            half + 1,
            "irfft spectrum length must match the plan"
        );
        // Undo the untangling: E[k] = (A[k] + conj(A[m/2−k]))/2,
        // O[k] = (A[k] − conj(A[m/2−k]))/2 · W^{-k}, Z[k] = E[k] + i·O[k].
        let mut z = Vec::with_capacity(half);
        for k in 0..half {
            let ak = spectrum[k];
            let amk = spectrum[half - k].conj();
            let e = (ak + amk).scale(0.5);
            let wo = (ak - amk).scale(0.5); // W^k·O[k]
            let o = self.untangle[k].conj() * wo;
            z.push(e + Complex::new(-o.im, o.re)); // E + i·O
        }
        fft_tabled(&mut z, &self.stage, false);
        let mut out = Vec::with_capacity(self.m);
        for c in z {
            out.push(c.re);
            out.push(c.im);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::default();
                for (j, &v) in x.iter().enumerate() {
                    let w = Complex::cis(-2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64);
                    acc = acc + v * w;
                }
                acc
            })
            .collect()
    }

    fn signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                Complex::new(
                    (i as f64 * 0.37).sin() + 0.2 * i as f64,
                    (i as f64 * 0.11).cos(),
                )
            })
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn pow2_matches_naive() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let x = signal(n);
            let mut fast = x.clone();
            fft_pow2(&mut fast);
            assert_close(&fast, &naive_dft(&x), 1e-8);
        }
    }

    #[test]
    fn bluestein_matches_naive() {
        for n in [3usize, 5, 6, 7, 12, 20, 45, 100] {
            let x = signal(n);
            assert_close(&dft(&x), &naive_dft(&x), 1e-7);
        }
    }

    #[test]
    fn roundtrip_arbitrary_lengths() {
        for n in [1usize, 2, 3, 17, 32, 100, 160] {
            let x = signal(n);
            let back = idft(&dft(&x));
            assert_close(&back, &x, 1e-9);
        }
    }

    #[test]
    fn parseval_holds() {
        let x = signal(96);
        let freq = dft(&x);
        let t_energy: f64 = x.iter().map(|c| c.norm_sq()).sum();
        let f_energy: f64 = freq.iter().map(|c| c.norm_sq()).sum::<f64>() / 96.0;
        assert!((t_energy - f_energy).abs() < 1e-7 * t_energy);
    }

    #[test]
    fn rfft_matches_complex_fft() {
        for m in [2usize, 4, 8, 32, 256] {
            let x: Vec<f64> = (0..m)
                .map(|i| (i as f64 * 0.41).sin() + 0.1 * i as f64)
                .collect();
            let mut full: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
            fft_pow2(&mut full);
            let half = rfft(&x);
            assert_eq!(half.len(), m / 2 + 1);
            for (k, h) in half.iter().enumerate() {
                assert!(
                    (*h - full[k]).abs() < 1e-9,
                    "bin {k}: {h:?} vs {:?}",
                    full[k]
                );
            }
        }
    }

    #[test]
    fn rfft_roundtrip() {
        for m in [2usize, 4, 16, 128, 1024] {
            let x: Vec<f64> = (0..m).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
            let back = irfft(&rfft(&x));
            assert_eq!(back.len(), m);
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn impulse_is_flat_spectrum() {
        let mut x = vec![Complex::default(); 15];
        x[0] = Complex::new(1.0, 0.0);
        for c in dft(&x) {
            assert!((c.re - 1.0).abs() < 1e-10 && c.im.abs() < 1e-10);
        }
    }
}
