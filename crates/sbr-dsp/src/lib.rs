//! # Shared DSP kernels
//!
//! The complex FFT used to live inside `sbr-baselines`, which made it
//! unreachable from `sbr-core` without a dependency cycle (`baselines`
//! depends on `core`). The encoder's `BestMap` hot path now needs the FFT
//! for its `O((B + len) log (B + len))` sliding-dot-product kernel
//! (`sbr_core::xcorr`), so the kernel lives here: a leaf crate both sides
//! can depend on. `sbr-baselines` re-exports [`fft`] under its old path, so
//! `sbr_baselines::fft::...` callers are unaffected.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod fft;

pub use fft::Complex;
