//! Cross-method invariants: every compressor in the crate, driven over the
//! same inputs through the common [`Compressor`] trait.

use sbr_baselines::dct::DctCompressor;
use sbr_baselines::fourier::FourierCompressor;
use sbr_baselines::histogram::{Bucketing, HistogramCompressor};
use sbr_baselines::linreg::LinRegCompressor;
use sbr_baselines::quadreg::QuadRegCompressor;
use sbr_baselines::swing::SwingCompressor;
use sbr_baselines::v_optimal::VOptimalCompressor;
use sbr_baselines::wavelet::WaveletCompressor;
use sbr_baselines::wavelet2d::Wavelet2dCompressor;
use sbr_baselines::{Allocation, Compressor};
use sbr_core::MultiSeries;

fn all_methods() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(WaveletCompressor {
            allocation: Allocation::Concatenated,
        }),
        Box::new(WaveletCompressor {
            allocation: Allocation::PerSignal,
        }),
        Box::new(Wavelet2dCompressor),
        Box::new(DctCompressor {
            allocation: Allocation::Concatenated,
        }),
        Box::new(DctCompressor {
            allocation: Allocation::PerSignal,
        }),
        Box::new(FourierCompressor {
            allocation: Allocation::PerSignal,
        }),
        Box::new(HistogramCompressor {
            policy: Bucketing::EquiDepth,
            allocation: Allocation::PerSignal,
        }),
        Box::new(HistogramCompressor {
            policy: Bucketing::EquiWidth,
            allocation: Allocation::PerSignal,
        }),
        Box::new(HistogramCompressor {
            policy: Bucketing::MaxDiff,
            allocation: Allocation::PerSignal,
        }),
        Box::new(VOptimalCompressor),
        Box::new(LinRegCompressor::default()),
        Box::new(QuadRegCompressor),
        Box::new(SwingCompressor),
    ]
}

fn batch(n: usize, m: usize, seed: u64) -> MultiSeries {
    let rows: Vec<Vec<f64>> = (0..n)
        .map(|r| {
            (0..m)
                .map(|i| {
                    let t = (i as u64 + seed * 31 + r as u64 * 7) as f64;
                    (t * 0.17).sin() * 6.0 + (t * 0.011).cos() * 3.0 + ((i * 13) % 5) as f64
                })
                .collect()
        })
        .collect();
    MultiSeries::from_rows(&rows).unwrap()
}

fn sse(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

#[test]
fn every_method_returns_finite_full_shape() {
    let data = batch(3, 96, 1);
    for m in all_methods() {
        for budget in [12usize, 36, 96] {
            let rec = m.compress_reconstruct(&data, budget);
            assert_eq!(rec.len(), data.len(), "{} at {budget}", m.name());
            assert!(
                rec.iter().all(|v| v.is_finite()),
                "{} produced non-finite output",
                m.name()
            );
        }
    }
}

#[test]
fn every_method_error_is_weakly_monotone_in_budget() {
    let data = batch(2, 128, 2);
    for m in all_methods() {
        let mut prev = f64::INFINITY;
        for budget in [16usize, 32, 64, 128, 256] {
            let rec = m.compress_reconstruct(&data, budget);
            let e = sse(data.flat(), &rec);
            assert!(
                e <= prev * 1.05 + 1e-9,
                "{}: error rose {prev} → {e} at budget {budget}",
                m.name()
            );
            prev = e;
        }
    }
}

#[test]
fn transforms_beat_histograms_on_smooth_data() {
    // A smooth two-tone signal: any frequency-domain method must beat
    // piecewise-constant buckets at equal space.
    let rows = vec![(0..256)
        .map(|i| {
            (2.0 * std::f64::consts::PI * 3.0 * i as f64 / 256.0).sin() * 10.0
                + (2.0 * std::f64::consts::PI * 7.0 * i as f64 / 256.0).cos() * 4.0
        })
        .collect::<Vec<f64>>()];
    let data = MultiSeries::from_rows(&rows).unwrap();
    let budget = 24;
    let dct = DctCompressor {
        allocation: Allocation::PerSignal,
    }
    .compress_reconstruct(&data, budget);
    let hist = HistogramCompressor::default().compress_reconstruct(&data, budget);
    assert!(sse(data.flat(), &dct) < sse(data.flat(), &hist) / 10.0);
}

#[test]
fn names_are_unique() {
    let methods = all_methods();
    let mut names: Vec<&str> = methods.iter().map(|m| m.name()).collect();
    let before = names.len();
    names.sort_unstable();
    names.dedup();
    assert_eq!(
        names.len(),
        before,
        "duplicate compressor names confuse reports"
    );
}

#[test]
fn zero_budget_degrades_gracefully() {
    let data = batch(2, 32, 3);
    for m in all_methods() {
        let rec = m.compress_reconstruct(&data, 0);
        assert_eq!(rec.len(), data.len(), "{}", m.name());
        assert!(rec.iter().all(|v| v.is_finite()), "{}", m.name());
    }
}

#[test]
fn constant_data_is_cheap_for_everyone() {
    let data = MultiSeries::from_rows(&[vec![7.0; 64]]).unwrap();
    for m in all_methods() {
        let rec = m.compress_reconstruct(&data, 8);
        let e = sse(data.flat(), &rec);
        assert!(
            e < 1e-9,
            "{} cannot represent a constant in 8 values (sse {e})",
            m.name()
        );
    }
}
