//! Piecewise-constant ("histogram") approximations of a sequence, the
//! third comparator of the evaluation. A bucket stores its end boundary and
//! its mean — two values under the equal-space convention.
//!
//! Three bucketing policies:
//!
//! * **equi-depth** — boundaries chosen so each bucket carries (about) the
//!   same Σ|value| mass, the variant named in the paper (after Poosala et
//!   al.),
//! * **equi-width** — equal-length buckets,
//! * **max-diff** — boundaries at the largest adjacent differences.

use sbr_core::MultiSeries;

use crate::{allocate, Allocation, Compressor};

/// A bucketing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bucketing {
    /// Equal Σ|value| mass per bucket (the paper's choice).
    EquiDepth,
    /// Equal-length buckets.
    EquiWidth,
    /// Boundaries at the largest adjacent value jumps.
    MaxDiff,
}

/// One histogram bucket over positions `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// First position covered.
    pub start: usize,
    /// One past the last position covered.
    pub end: usize,
    /// Stored representative (the bucket mean — SSE-optimal for a fixed
    /// partition).
    pub value: f64,
}

/// Partition `values` into at most `n_buckets` buckets under `policy`.
///
/// ```
/// use sbr_baselines::histogram::{build, Bucketing};
/// let v = [1.0, 1.0, 9.0, 9.0];
/// let b = build(&v, 2, Bucketing::MaxDiff);
/// assert_eq!(b.len(), 2);
/// assert_eq!((b[0].value, b[1].value), (1.0, 9.0));
/// ```
pub fn build(values: &[f64], n_buckets: usize, policy: Bucketing) -> Vec<Bucket> {
    let n = values.len();
    if n == 0 || n_buckets == 0 {
        return Vec::new();
    }
    let n_buckets = n_buckets.min(n);
    let boundaries = match policy {
        Bucketing::EquiWidth => (0..=n_buckets)
            .map(|b| b * n / n_buckets)
            .collect::<Vec<_>>(),
        Bucketing::EquiDepth => {
            let total: f64 = values.iter().map(|v| v.abs()).sum();
            // lint:allow(float-eq): exact zero-sum sentinel; a tolerance would change bucket boundaries
            if total == 0.0 {
                (0..=n_buckets).map(|b| b * n / n_buckets).collect()
            } else {
                let mut bounds = vec![0usize];
                let per = total / n_buckets as f64;
                let mut acc = 0.0;
                let mut next_target = per;
                for (i, v) in values.iter().enumerate() {
                    acc += v.abs();
                    // A huge value can jump several targets at once; emit
                    // one boundary per crossing but never duplicate
                    // positions.
                    while acc >= next_target && bounds.len() < n_buckets {
                        // lint:allow(panic-reachability): bounds is seeded with 0 before the loop
                        if i + 1 > *bounds.last().expect("bounds never empty") {
                            bounds.push(i + 1);
                        }
                        next_target += per;
                    }
                }
                // lint:allow(panic-reachability): bounds is seeded with 0 before the loop
                while *bounds.last().expect("non-empty") < n {
                    bounds.push(n);
                }
                bounds.dedup();
                bounds
            }
        }
        Bucketing::MaxDiff => {
            let mut jumps: Vec<usize> = (1..n).collect();
            jumps.sort_by(|&a, &b| {
                let da = (values[a] - values[a - 1]).abs();
                let db = (values[b] - values[b - 1]).abs();
                db.total_cmp(&da)
            });
            let mut bounds: Vec<usize> = jumps.into_iter().take(n_buckets - 1).collect();
            bounds.push(0);
            bounds.push(n);
            bounds.sort_unstable();
            bounds.dedup();
            bounds
        }
    };
    boundaries
        .windows(2)
        .filter(|w| w[1] > w[0])
        .map(|w| {
            let (s, e) = (w[0], w[1]);
            let mean = values[s..e].iter().sum::<f64>() / (e - s) as f64;
            Bucket {
                start: s,
                end: e,
                value: mean,
            }
        })
        .collect()
}

/// Expand buckets back into a dense sequence of length `n`.
pub fn reconstruct(buckets: &[Bucket], n: usize) -> Vec<f64> {
    let mut out = vec![0.0f64; n];
    for b in buckets {
        for slot in &mut out[b.start..b.end.min(n)] {
            *slot = b.value;
        }
    }
    out
}

/// End-to-end: bucketize and expand.
pub fn approximate(values: &[f64], n_buckets: usize, policy: Bucketing) -> Vec<f64> {
    reconstruct(&build(values, n_buckets, policy), values.len())
}

/// The histogram baseline (2 values per bucket).
#[derive(Debug, Clone, Copy)]
pub struct HistogramCompressor {
    /// Bucketing policy.
    pub policy: Bucketing,
    /// Budget split strategy.
    pub allocation: Allocation,
}

impl Default for HistogramCompressor {
    fn default() -> Self {
        HistogramCompressor {
            policy: Bucketing::EquiDepth,
            allocation: Allocation::PerSignal,
        }
    }
}

impl Compressor for HistogramCompressor {
    fn name(&self) -> &'static str {
        match self.policy {
            Bucketing::EquiDepth => "Histograms",
            Bucketing::EquiWidth => "Histograms (equi-width)",
            Bucketing::MaxDiff => "Histograms (max-diff)",
        }
    }

    fn compress_reconstruct(&self, data: &MultiSeries, budget_values: usize) -> Vec<f64> {
        allocate(self.allocation, data, budget_values, |row, budget| {
            approximate(row, budget / 2, self.policy)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_partition_the_domain() {
        let v: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        for policy in [
            Bucketing::EquiDepth,
            Bucketing::EquiWidth,
            Bucketing::MaxDiff,
        ] {
            let bs = build(&v, 7, policy);
            assert!(!bs.is_empty());
            assert_eq!(bs[0].start, 0);
            assert_eq!(bs.last().unwrap().end, 100);
            for w in bs.windows(2) {
                assert_eq!(w[0].end, w[1].start, "{policy:?} left a gap");
            }
        }
    }

    #[test]
    fn bucket_count_respected() {
        let v: Vec<f64> = (0..64).map(|i| i as f64).collect();
        for policy in [
            Bucketing::EquiDepth,
            Bucketing::EquiWidth,
            Bucketing::MaxDiff,
        ] {
            assert!(build(&v, 5, policy).len() <= 5);
        }
    }

    #[test]
    fn piecewise_constant_data_is_exact() {
        let mut v = vec![2.0; 20];
        v.extend(vec![-3.0; 20]);
        v.extend(vec![7.0; 20]);
        let rec = approximate(&v, 3, Bucketing::MaxDiff);
        for (a, b) in v.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn equi_depth_concentrates_buckets_on_mass() {
        // First half is tiny, second half is huge: equi-depth must spend
        // most boundaries on the second half.
        let mut v = vec![0.01; 50];
        v.extend((0..50).map(|i| 100.0 + i as f64));
        let bs = build(&v, 10, Bucketing::EquiDepth);
        let in_heavy = bs.iter().filter(|b| b.start >= 50).count();
        assert!(in_heavy >= 7, "only {in_heavy} buckets in the heavy half");
    }

    #[test]
    fn zero_signal_handled() {
        let v = vec![0.0; 16];
        let rec = approximate(&v, 4, Bucketing::EquiDepth);
        assert_eq!(rec, v);
    }

    #[test]
    fn single_bucket_is_global_mean() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        let bs = build(&v, 1, Bucketing::EquiWidth);
        assert_eq!(bs.len(), 1);
        assert!((bs[0].value - 2.5).abs() < 1e-12);
    }

    #[test]
    fn more_buckets_never_hurt_on_equiwidth() {
        let v: Vec<f64> = (0..128).map(|i| ((i * 13) % 29) as f64).collect();
        let mut prev = f64::INFINITY;
        for k in [1usize, 2, 4, 8, 16, 32, 64, 128] {
            let rec = approximate(&v, k, Bucketing::EquiWidth);
            let err: f64 = v.iter().zip(&rec).map(|(a, b)| (a - b).powi(2)).sum();
            assert!(err <= prev + 1e-9);
            prev = err;
        }
    }

    #[test]
    fn compressor_budget_convention() {
        let data =
            MultiSeries::from_rows(&[(0..50).map(|i| i as f64).collect::<Vec<_>>()]).unwrap();
        let rec = HistogramCompressor::default().compress_reconstruct(&data, 10);
        assert_eq!(rec.len(), 50);
        // 10 values → 5 buckets → at most 5 distinct reconstruction levels.
        let mut levels: Vec<u64> = rec.iter().map(|v| v.to_bits()).collect();
        levels.sort_unstable();
        levels.dedup();
        assert!(levels.len() <= 5);
    }
}
