//! Complex FFT kernel: iterative radix-2 for power-of-two lengths plus
//! Bluestein's chirp-z algorithm for arbitrary lengths, giving every
//! transform baseline an `O(n log n)` path regardless of the dataset's
//! chunk sizes (2048, 2560, 3072, 4096, 5120 in the paper's experiments).

use std::ops::{Add, Mul, Sub};

/// A complex number; deliberately minimal — only what the transforms need.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Construct from parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    pub fn abs(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Scale by a real factor.
    pub fn scale(self, s: f64) -> Self {
        Complex {
            re: self.re * s,
            im: self.im * s,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, o: Complex) -> Complex {
        Complex::new(self.re + o.re, self.im + o.im)
    }
}
impl Sub for Complex {
    type Output = Complex;
    fn sub(self, o: Complex) -> Complex {
        Complex::new(self.re - o.re, self.im - o.im)
    }
}
impl Mul for Complex {
    type Output = Complex;
    fn mul(self, o: Complex) -> Complex {
        Complex::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }
}

/// In-place forward FFT (`X_k = Σ x_j e^{-2πi jk / n}`). Length must be a
/// power of two.
pub fn fft_pow2(buf: &mut [Complex]) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "fft_pow2 requires a power-of-two length");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let shift = n.leading_zeros() + 1;
    for i in 0..n {
        let j = i.reverse_bits() >> shift;
        if i < j {
            buf.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::cis(ang);
        for chunk in buf.chunks_mut(len) {
            let mut w = Complex::new(1.0, 0.0);
            let half = len / 2;
            for i in 0..half {
                let u = chunk[i];
                let v = chunk[i + half] * w;
                chunk[i] = u + v;
                chunk[i + half] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
}

/// In-place inverse FFT for power-of-two lengths (includes the `1/n`
/// normalization).
pub fn ifft_pow2(buf: &mut [Complex]) {
    for c in buf.iter_mut() {
        *c = c.conj();
    }
    fft_pow2(buf);
    let inv = 1.0 / buf.len() as f64;
    for c in buf.iter_mut() {
        *c = c.conj().scale(inv);
    }
}

/// Forward DFT of arbitrary length via Bluestein's algorithm:
/// `X_k = Σ x_j e^{-2πi jk / n}` computed as a circular convolution of two
/// chirp sequences carried out with power-of-two FFTs.
pub fn dft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    if n.is_power_of_two() {
        let mut buf = input.to_vec();
        fft_pow2(&mut buf);
        return buf;
    }
    // Chirp: w_j = e^{-πi j²/n}. Use j² mod 2n to keep the argument small
    // and the chirp exactly periodic.
    let m = (2 * n - 1).next_power_of_two();
    let chirp: Vec<Complex> = (0..n)
        .map(|j| {
            let jj = (j * j) % (2 * n);
            Complex::cis(-std::f64::consts::PI * jj as f64 / n as f64)
        })
        .collect();
    let mut a = vec![Complex::default(); m];
    for j in 0..n {
        a[j] = input[j] * chirp[j];
    }
    let mut b = vec![Complex::default(); m];
    b[0] = chirp[0].conj();
    for j in 1..n {
        let c = chirp[j].conj();
        b[j] = c;
        b[m - j] = c;
    }
    fft_pow2(&mut a);
    fft_pow2(&mut b);
    for (x, y) in a.iter_mut().zip(&b) {
        *x = *x * *y;
    }
    ifft_pow2(&mut a);
    (0..n).map(|k| a[k] * chirp[k]).collect()
}

/// Inverse DFT of arbitrary length (with `1/n` normalization).
pub fn idft(input: &[Complex]) -> Vec<Complex> {
    let n = input.len();
    if n == 0 {
        return Vec::new();
    }
    let conj: Vec<Complex> = input.iter().map(|c| c.conj()).collect();
    let inv = 1.0 / n as f64;
    dft(&conj).into_iter().map(|c| c.conj().scale(inv)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[Complex]) -> Vec<Complex> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut acc = Complex::default();
                for (j, &v) in x.iter().enumerate() {
                    let w = Complex::cis(-2.0 * std::f64::consts::PI * (j * k) as f64 / n as f64);
                    acc = acc + v * w;
                }
                acc
            })
            .collect()
    }

    fn signal(n: usize) -> Vec<Complex> {
        (0..n)
            .map(|i| {
                Complex::new(
                    (i as f64 * 0.37).sin() + 0.2 * i as f64,
                    (i as f64 * 0.11).cos(),
                )
            })
            .collect()
    }

    fn assert_close(a: &[Complex], b: &[Complex], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((*x - *y).abs() < tol, "{x:?} vs {y:?}");
        }
    }

    #[test]
    fn pow2_matches_naive() {
        for n in [1usize, 2, 4, 8, 16, 64] {
            let x = signal(n);
            let mut fast = x.clone();
            fft_pow2(&mut fast);
            assert_close(&fast, &naive_dft(&x), 1e-8);
        }
    }

    #[test]
    fn bluestein_matches_naive() {
        for n in [3usize, 5, 6, 7, 12, 20, 45, 100] {
            let x = signal(n);
            assert_close(&dft(&x), &naive_dft(&x), 1e-7);
        }
    }

    #[test]
    fn roundtrip_arbitrary_lengths() {
        for n in [1usize, 2, 3, 17, 32, 100, 160] {
            let x = signal(n);
            let back = idft(&dft(&x));
            assert_close(&back, &x, 1e-9);
        }
    }

    #[test]
    fn parseval_holds() {
        let x = signal(96);
        let freq = dft(&x);
        let t_energy: f64 = x.iter().map(|c| c.norm_sq()).sum();
        let f_energy: f64 = freq.iter().map(|c| c.norm_sq()).sum::<f64>() / 96.0;
        assert!((t_energy - f_energy).abs() < 1e-7 * t_energy);
    }

    #[test]
    fn impulse_is_flat_spectrum() {
        let mut x = vec![Complex::default(); 15];
        x[0] = Complex::new(1.0, 0.0);
        for c in dft(&x) {
            assert!((c.re - 1.0).abs() < 1e-10 && c.im.abs() < 1e-10);
        }
    }
}
