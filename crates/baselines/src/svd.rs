//! `GetBaseSVD()` (paper appendix): build the base signal from the top
//! eigenvectors of `RᵀR`, where `R` stacks all `W`-wide candidate windows.
//!
//! The symmetric eigenproblem is solved from scratch with the cyclic Jacobi
//! rotation method — robust, simple, and `W ≈ √n` keeps the matrix small
//! (`143×143` for the paper's largest batches).

use sbr_core::config::BaseBuilder;
use sbr_core::get_base::candidate_intervals;
use sbr_core::{ErrorMetric, MultiSeries};

/// A dense symmetric matrix in row-major order.
#[derive(Debug, Clone)]
pub struct SymMatrix {
    n: usize,
    a: Vec<f64>,
}

impl SymMatrix {
    /// Build `RᵀR` from rows of length `n`.
    pub fn gram(rows: &[&[f64]], n: usize) -> Self {
        let mut a = vec![0.0f64; n * n];
        for r in rows {
            debug_assert_eq!(r.len(), n);
            for i in 0..n {
                let ri = r[i];
                for j in i..n {
                    a[i * n + j] += ri * r[j];
                }
            }
        }
        for i in 0..n {
            for j in 0..i {
                a[i * n + j] = a[j * n + i];
            }
        }
        SymMatrix { n, a }
    }

    /// Matrix dimension.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Entry accessor (for tests).
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.n + j]
    }
}

/// Eigen-decomposition of a symmetric matrix: eigenvalues (descending) and
/// the matching eigenvectors as rows.
#[derive(Debug, Clone)]
pub struct Eigen {
    /// Eigenvalues, largest first.
    pub values: Vec<f64>,
    /// `vectors[k]` is the unit eigenvector for `values[k]`.
    pub vectors: Vec<Vec<f64>>,
}

/// Cyclic Jacobi eigensolver. Converges quadratically; `max_sweeps` bounds
/// the work on pathological inputs (30 sweeps is far beyond what any real
/// matrix here needs).
pub fn jacobi_eigen(m: &SymMatrix, max_sweeps: usize) -> Eigen {
    let n = m.n;
    let mut a = m.a.clone();
    // v starts as identity; accumulates rotations column-wise so that
    // column k of v is the eigenvector of eigenvalue a[k][k].
    let mut v = vec![0.0f64; n * n];
    for i in 0..n {
        v[i * n + i] = 1.0;
    }

    let off = |a: &[f64]| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                s += a[i * n + j] * a[i * n + j];
            }
        }
        s
    };
    let scale: f64 = (0..n)
        .map(|i| m.at(i, i).abs())
        .fold(0.0, f64::max)
        .max(1.0);
    let tol = 1e-24 * scale * scale * (n * n) as f64;

    for _ in 0..max_sweeps {
        if off(&a) <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[p * n + q];
                if apq.abs() <= f64::MIN_POSITIVE {
                    continue;
                }
                let app = a[p * n + p];
                let aqq = a[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                // Rotate rows/columns p and q of `a`.
                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
                // Accumulate the rotation into v.
                for k in 0..n {
                    let vkp = v[k * n + p];
                    let vkq = v[k * n + q];
                    v[k * n + p] = c * vkp - s * vkq;
                    v[k * n + q] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| a[j * n + j].total_cmp(&a[i * n + i]));
    Eigen {
        values: order.iter().map(|&k| a[k * n + k]).collect(),
        vectors: order
            .iter()
            .map(|&k| (0..n).map(|i| v[i * n + k]).collect())
            .collect(),
    }
}

/// `GetBaseSVD()`: the top `max_ins` eigenvectors of the candidate-window
/// Gram matrix, each a `W`-wide base interval.
pub fn get_base_svd(data: &MultiSeries, w: usize, max_ins: usize) -> Vec<Vec<f64>> {
    let windows = candidate_intervals(data, w);
    if windows.is_empty() || max_ins == 0 {
        return Vec::new();
    }
    let gram = SymMatrix::gram(&windows, w);
    let eig = jacobi_eigen(&gram, 30);
    eig.vectors.into_iter().take(max_ins.min(w)).collect()
}

/// [`BaseBuilder`] adapter so an `SbrEncoder` can run with the SVD base.
#[derive(Debug, Clone, Copy, Default)]
pub struct SvdBaseBuilder;

impl BaseBuilder for SvdBaseBuilder {
    fn build(
        &self,
        data: &MultiSeries,
        w: usize,
        max_ins: usize,
        _metric: ErrorMetric,
    ) -> Vec<Vec<f64>> {
        get_base_svd(data, w, max_ins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(rows: &[Vec<f64>]) -> MultiSeries {
        MultiSeries::from_rows(rows).unwrap()
    }

    #[test]
    fn jacobi_solves_known_2x2() {
        // [[2, 1], [1, 2]] → eigenvalues 3, 1.
        let m = SymMatrix {
            n: 2,
            a: vec![2.0, 1.0, 1.0, 2.0],
        };
        let e = jacobi_eigen(&m, 30);
        assert!((e.values[0] - 3.0).abs() < 1e-10);
        assert!((e.values[1] - 1.0).abs() < 1e-10);
        // Eigenvector of 3 is (1,1)/√2 up to sign.
        let v = &e.vectors[0];
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-10);
        assert!((v[0] - v[1]).abs() < 1e-10);
    }

    #[test]
    fn eigen_relation_holds() {
        // A·v = λ·v for a Gram matrix of pseudo-random rows.
        let rows: Vec<Vec<f64>> = (0..6)
            .map(|r| {
                (0..5)
                    .map(|i| ((r * 7 + i * 3) % 11) as f64 - 5.0)
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let m = SymMatrix::gram(&refs, 5);
        let e = jacobi_eigen(&m, 40);
        for (lam, v) in e.values.iter().zip(&e.vectors) {
            for i in 0..5 {
                let av: f64 = (0..5).map(|j| m.at(i, j) * v[j]).sum();
                assert!((av - lam * v[i]).abs() < 1e-7 * lam.abs().max(1.0));
            }
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let rows: Vec<Vec<f64>> = (0..8)
            .map(|r| (0..6).map(|i| ((i + r) as f64 * 0.7).sin()).collect())
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let e = jacobi_eigen(&SymMatrix::gram(&refs, 6), 40);
        for i in 0..6 {
            for j in i..6 {
                let dot: f64 = e.vectors[i]
                    .iter()
                    .zip(&e.vectors[j])
                    .map(|(a, b)| a * b)
                    .sum();
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-9, "({i},{j}) dot = {dot}");
            }
        }
    }

    #[test]
    fn gram_eigenvalues_nonnegative() {
        let rows: Vec<Vec<f64>> = (0..10)
            .map(|r| (0..4).map(|i| (r as f64 - i as f64) * 0.3).collect())
            .collect();
        let refs: Vec<&[f64]> = rows.iter().map(Vec::as_slice).collect();
        let e = jacobi_eigen(&SymMatrix::gram(&refs, 4), 40);
        for lam in e.values {
            assert!(lam >= -1e-9);
        }
    }

    #[test]
    fn rank_one_data_needs_one_eigenvector() {
        // All windows are multiples of one pattern → the top eigenvector
        // explains everything.
        let p = [1.0, -2.0, 3.0, 0.5];
        let mut row = Vec::new();
        for s in 1..=4 {
            row.extend(p.iter().map(|v| v * s as f64));
        }
        let data = ms(&[row]);
        let base = get_base_svd(&data, 4, 2);
        let f = sbr_core::regression::fit_sse(&base[0], &p);
        assert!(f.err < 1e-9, "top eigenvector must explain the pattern");
    }

    #[test]
    fn respects_max_ins_and_dimension() {
        let data = ms(&[(0..32).map(|i| (i as f64).sin()).collect()]);
        assert_eq!(get_base_svd(&data, 8, 3).len(), 3);
        assert_eq!(get_base_svd(&data, 8, 100).len(), 8); // ≤ W vectors exist
        assert!(get_base_svd(&data, 8, 0).is_empty());
    }
}
