//! Haar wavelet synopsis: orthonormal decomposition + largest-coefficient
//! thresholding, the standard SSE-optimal wavelet synopsis the paper
//! compares against.
//!
//! Works on arbitrary lengths (not just powers of two): at each level the
//! trailing element of an odd-length array is carried to the next level
//! unchanged. The transform remains orthogonal, so keeping the largest
//! coefficients is still SSE-optimal.

use sbr_core::MultiSeries;

use crate::{allocate, Allocation, Compressor, SQRT2_INV};

/// Forward orthonormal Haar transform. Output layout: `out[0]` is the
/// top-level approximation coefficient, followed by detail bands from the
/// coarsest to the finest level.
pub fn forward(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut out = vec![0.0f64; n];
    if n == 0 {
        return out;
    }
    let mut current = values.to_vec();
    let mut next: Vec<f64> = Vec::with_capacity(n.div_ceil(2));
    let mut pos = n;
    while current.len() > 1 {
        let pairs = current.len() / 2;
        next.clear();
        for i in 0..pairs {
            let (a, b) = (current[2 * i], current[2 * i + 1]);
            next.push((a + b) * SQRT2_INV);
            out[pos - pairs + i] = (a - b) * SQRT2_INV;
        }
        if current.len() % 2 == 1 {
            next.push(current[current.len() - 1]);
        }
        pos -= pairs;
        std::mem::swap(&mut current, &mut next);
    }
    debug_assert_eq!(pos, 1);
    out[0] = current[0];
    out
}

/// Inverse of [`forward`].
pub fn inverse(coeffs: &[f64]) -> Vec<f64> {
    let n = coeffs.len();
    if n == 0 {
        return Vec::new();
    }
    // Reconstruct the level lengths the forward pass went through.
    let mut lengths = Vec::new();
    let mut l = n;
    while l > 1 {
        lengths.push(l);
        l = l.div_ceil(2);
    }
    let mut current = vec![coeffs[0]];
    let mut pos = 1usize;
    // Detail bands were written coarsest-first right after out[0] …
    // reconstruct in the same order.
    for &level_len in lengths.iter().rev() {
        let pairs = level_len / 2;
        let details = &coeffs[pos..pos + pairs];
        let mut expanded = Vec::with_capacity(level_len);
        for i in 0..pairs {
            let s = current[i];
            let d = details[i];
            expanded.push((s + d) * SQRT2_INV);
            expanded.push((s - d) * SQRT2_INV);
        }
        if level_len % 2 == 1 {
            expanded.push(current[pairs]);
        }
        pos += pairs;
        current = expanded;
    }
    current
}

/// Keep the `k` largest-magnitude coefficients, zeroing the rest
/// (SSE-optimal for an orthonormal basis). Returns the sparse synopsis as
/// `(index, value)` pairs, largest first.
pub fn top_k(coeffs: &[f64], k: usize) -> Vec<(usize, f64)> {
    let mut idx: Vec<usize> = (0..coeffs.len()).collect();
    idx.sort_by(|&a, &b| coeffs[b].abs().total_cmp(&coeffs[a].abs()));
    idx.into_iter().take(k).map(|i| (i, coeffs[i])).collect()
}

/// Rebuild a dense coefficient array from a sparse synopsis.
pub fn densify(synopsis: &[(usize, f64)], n: usize) -> Vec<f64> {
    let mut out = vec![0.0f64; n];
    for &(i, v) in synopsis {
        out[i] = v;
    }
    out
}

/// End-to-end synopsis: transform, keep the `k` largest, reconstruct.
///
/// ```
/// let constant = vec![5.0; 32];
/// let rec = sbr_baselines::wavelet::approximate(&constant, 1);
/// assert!(rec.iter().all(|v| (v - 5.0).abs() < 1e-10));
/// ```
pub fn approximate(values: &[f64], k: usize) -> Vec<f64> {
    let coeffs = forward(values);
    let synopsis = top_k(&coeffs, k);
    inverse(&densify(&synopsis, values.len()))
}

/// The wavelet baseline under the equal-space convention: a retained
/// coefficient costs two values (index + coefficient).
#[derive(Debug, Clone, Copy)]
pub struct WaveletCompressor {
    /// Budget split strategy.
    pub allocation: Allocation,
}

impl Default for WaveletCompressor {
    fn default() -> Self {
        WaveletCompressor {
            allocation: Allocation::Concatenated,
        }
    }
}

impl Compressor for WaveletCompressor {
    fn name(&self) -> &'static str {
        match self.allocation {
            Allocation::Concatenated => "Wavelets",
            Allocation::PerSignal => "Wavelets (per-signal)",
        }
    }

    fn compress_reconstruct(&self, data: &MultiSeries, budget_values: usize) -> Vec<f64> {
        allocate(self.allocation, data, budget_values, |row, budget| {
            approximate(row, budget / 2)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.3).sin() * 4.0 + (i % 7) as f64)
            .collect()
    }

    #[test]
    fn roundtrip_pow2() {
        let x = signal(64);
        let back = inverse(&forward(&x));
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn roundtrip_arbitrary_lengths() {
        for n in [1usize, 2, 3, 5, 17, 100, 1000] {
            let x = signal(n);
            let back = inverse(&forward(&x));
            assert_eq!(back.len(), n);
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-9, "len {n}");
            }
        }
    }

    #[test]
    fn transform_preserves_energy() {
        // Orthogonality check (Parseval).
        let x = signal(100);
        let c = forward(&x);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ec: f64 = c.iter().map(|v| v * v).sum();
        assert!((ex - ec).abs() < 1e-8 * ex);
    }

    #[test]
    fn constant_signal_needs_one_coefficient() {
        let x = vec![5.0; 64];
        let rec = approximate(&x, 1);
        for v in rec {
            assert!((v - 5.0).abs() < 1e-10);
        }
    }

    #[test]
    fn more_coefficients_never_hurt() {
        let x = signal(128);
        let errs: Vec<f64> = [4, 8, 16, 32, 64]
            .iter()
            .map(|&k| {
                let rec = approximate(&x, k);
                x.iter()
                    .zip(&rec)
                    .map(|(a, b)| (a - b).powi(2))
                    .sum::<f64>()
            })
            .collect();
        for w in errs.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
    }

    #[test]
    fn thresholding_is_sse_optimal_among_coefficient_subsets() {
        // Keeping the k largest must beat keeping any other k coefficients;
        // spot-check against a handful of random-ish subsets.
        let x = signal(32);
        let c = forward(&x);
        let k = 5;
        let best = approximate(&x, k);
        let best_err: f64 = x.iter().zip(&best).map(|(a, b)| (a - b).powi(2)).sum();
        for offset in 0..5 {
            let synopsis: Vec<(usize, f64)> = (0..k)
                .map(|i| {
                    let idx = (i * 6 + offset) % 32;
                    (idx, c[idx])
                })
                .collect();
            let rec = inverse(&densify(&synopsis, 32));
            let err: f64 = x.iter().zip(&rec).map(|(a, b)| (a - b).powi(2)).sum();
            assert!(best_err <= err + 1e-9);
        }
    }

    #[test]
    fn compressor_budget_convention() {
        let data = MultiSeries::from_rows(&[signal(64), signal(64)]).unwrap();
        let rec = WaveletCompressor::default().compress_reconstruct(&data, 20);
        assert_eq!(rec.len(), 128);
        // 20 values → 10 coefficients; must differ from exact reconstruction.
        let exact: Vec<f64> = data.flat().to_vec();
        let err: f64 = exact.iter().zip(&rec).map(|(a, b)| (a - b).powi(2)).sum();
        assert!(err > 0.0);
    }

    #[test]
    fn per_signal_allocation_reconstructs_rows_independently() {
        let data = MultiSeries::from_rows(&[vec![1.0; 32], signal(32)]).unwrap();
        let c = WaveletCompressor {
            allocation: Allocation::PerSignal,
        };
        let rec = c.compress_reconstruct(&data, 8); // 2 coeffs per row
                                                    // Constant row needs only one coefficient → reconstructed exactly.
        for v in &rec[..32] {
            assert!((v - 1.0).abs() < 1e-10);
        }
    }
}
