//! The Swing filter: *online* piecewise-linear approximation with a strict
//! per-sample error bound (Elmeleegy et al., VLDB 2009 lineage) — the
//! natural streaming competitor to SBR's batch pipeline.
//!
//! The filter maintains a cone of admissible slopes through the current
//! segment's origin; each new sample narrows the cone by the `±ε` window
//! around it, and a segment is emitted when the cone empties. Every
//! reconstructed value is then within `ε` of the original — the same
//! guarantee SBR's max-abs mode provides, but decided greedily sample by
//! sample with O(1) state, as a mote could run between SBR batches.
//!
//! Wire cost: segments are connected, so each costs **2** values (end
//! index + end value) after an initial anchor of 2.

/// One connected segment: the line runs from the previous knot to
/// `(end_index, end_value)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Knot {
    /// Sample index of this knot.
    pub index: usize,
    /// Reconstructed value at the knot.
    pub value: f64,
}

/// Compress `values` under the L∞ bound `epsilon`; returns the knot list
/// (first knot at index 0).
pub fn compress(values: &[f64], epsilon: f64) -> Vec<Knot> {
    assert!(epsilon >= 0.0, "epsilon must be non-negative");
    let n = values.len();
    if n == 0 {
        return Vec::new();
    }
    let mut knots = vec![Knot {
        index: 0,
        value: values[0],
    }];
    if n == 1 {
        return knots;
    }

    let mut origin = Knot {
        index: 0,
        value: values[0],
    };
    // Slope cone [lo, hi] through the origin.
    let mut lo = f64::NEG_INFINITY;
    let mut hi = f64::INFINITY;
    let mut last_inside = origin; // reconstruction at the last sample kept
    for (i, &v) in values.iter().enumerate().skip(1) {
        let dx = (i - origin.index) as f64;
        let s_lo = (v - epsilon - origin.value) / dx;
        let s_hi = (v + epsilon - origin.value) / dx;
        let new_lo = lo.max(s_lo);
        let new_hi = hi.min(s_hi);
        if new_lo <= new_hi {
            lo = new_lo;
            hi = new_hi;
            // Track a representative reconstruction (mid-cone).
            let mid = if lo.is_infinite() || hi.is_infinite() {
                (s_lo + s_hi) / 2.0
            } else {
                (lo + hi) / 2.0
            };
            last_inside = Knot {
                index: i,
                value: origin.value + mid * dx,
            };
        } else {
            // Cone emptied: close the segment at the previous sample using
            // the mid-cone slope, then restart from that knot.
            knots.push(last_inside);
            origin = last_inside;
            let dx = (i - origin.index) as f64;
            lo = (v - epsilon - origin.value) / dx;
            hi = (v + epsilon - origin.value) / dx;
            let mid = (lo + hi) / 2.0;
            last_inside = Knot {
                index: i,
                value: origin.value + mid * dx,
            };
        }
    }
    knots.push(last_inside);
    knots
}

/// Expand knots back into a dense sequence of length `n` (linear
/// interpolation between knots; the tail after the last knot holds).
pub fn reconstruct(knots: &[Knot], n: usize) -> Vec<f64> {
    let mut out = vec![0.0f64; n];
    if knots.is_empty() {
        return out;
    }
    // Before the first knot (index 0 by construction) and between knots.
    for w in knots.windows(2) {
        let (a, b) = (w[0], w[1]);
        let dx = (b.index - a.index) as f64;
        let end = b.index.min(n.saturating_sub(1));
        for (i, slot) in out.iter_mut().enumerate().take(end + 1).skip(a.index) {
            let t = (i - a.index) as f64 / dx;
            *slot = a.value * (1.0 - t) + b.value * t;
        }
    }
    let last = knots[knots.len() - 1];
    for slot in out.iter_mut().skip(last.index).take(n - last.index.min(n)) {
        *slot = last.value;
    }
    out
}

/// Find the largest `epsilon`-free compression for a target knot budget by
/// bisection on `epsilon` (the swing filter is monotone: larger ε ⇒ fewer
/// knots). Used to make the online filter comparable under the paper's
/// space-budget convention.
pub fn compress_to_budget(values: &[f64], max_knots: usize) -> Vec<Knot> {
    if values.is_empty() || max_knots == 0 {
        return Vec::new();
    }
    let span = values.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        - values.iter().copied().fold(f64::INFINITY, f64::min);
    // lint:allow(float-eq): constant-signal sentinel; tolerance would change filter output
    if span == 0.0 {
        return compress(values, 0.0);
    }
    let mut lo_eps = 0.0f64;
    let mut hi_eps = span;
    let mut best = compress(values, hi_eps);
    for _ in 0..40 {
        let mid = (lo_eps + hi_eps) / 2.0;
        let k = compress(values, mid);
        if k.len() <= max_knots {
            best = k;
            hi_eps = mid;
        } else {
            lo_eps = mid;
        }
    }
    best
}

use sbr_core::MultiSeries;

use crate::{allocate, Allocation, Compressor};

/// The Swing-filter baseline (2 values per knot).
#[derive(Debug, Clone, Copy, Default)]
pub struct SwingCompressor;

impl Compressor for SwingCompressor {
    fn name(&self) -> &'static str {
        "Swing filter"
    }

    fn compress_reconstruct(&self, data: &MultiSeries, budget_values: usize) -> Vec<f64> {
        allocate(Allocation::PerSignal, data, budget_values, |row, budget| {
            reconstruct(&compress_to_budget(row, budget / 2), row.len())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(values: &[f64], knots: &[Knot]) -> f64 {
        let rec = reconstruct(knots, values.len());
        values
            .iter()
            .zip(&rec)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn straight_line_needs_two_knots() {
        let v: Vec<f64> = (0..100).map(|i| 2.0 * i as f64 + 1.0).collect();
        let k = compress(&v, 0.01);
        assert_eq!(k.len(), 2);
        assert!(max_err(&v, &k) <= 0.01 + 1e-9);
    }

    #[test]
    fn error_bound_holds_on_rough_data() {
        let v: Vec<f64> = (0..500).map(|i| ((i * 37) % 23) as f64).collect();
        for eps in [0.5f64, 2.0, 10.0] {
            let k = compress(&v, eps);
            assert!(
                max_err(&v, &k) <= eps + 1e-9,
                "eps {eps}: err {}",
                max_err(&v, &k)
            );
        }
    }

    #[test]
    fn larger_epsilon_never_needs_more_knots() {
        let v: Vec<f64> = (0..300).map(|i| (i as f64 * 0.1).sin() * 20.0).collect();
        let mut prev = usize::MAX;
        for eps in [0.1f64, 0.5, 2.0, 8.0] {
            let k = compress(&v, eps).len();
            assert!(k <= prev, "eps {eps}: {k} knots after {prev}");
            prev = k;
        }
    }

    #[test]
    fn budget_bisection_respects_budget() {
        let v: Vec<f64> = (0..400).map(|i| ((i * i) % 71) as f64).collect();
        for budget in [4usize, 10, 40] {
            let k = compress_to_budget(&v, budget);
            assert!(k.len() <= budget, "budget {budget}: got {} knots", k.len());
            assert!(k.len() >= 2.min(budget));
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert!(compress(&[], 1.0).is_empty());
        let one = compress(&[7.0], 1.0);
        assert_eq!(one.len(), 1);
        assert_eq!(reconstruct(&one, 1), vec![7.0]);
        let flat = compress(&[3.0; 50], 0.0);
        assert_eq!(flat.len(), 2);
    }

    #[test]
    fn compressor_respects_value_budget() {
        let data = MultiSeries::from_rows(&[(0..200)
            .map(|i| (i as f64 * 0.23).sin() * 9.0)
            .collect::<Vec<_>>()])
        .unwrap();
        let rec = SwingCompressor.compress_reconstruct(&data, 20); // ≤ 10 knots
        assert_eq!(rec.len(), 200);
        let sse: f64 = data
            .flat()
            .iter()
            .zip(&rec)
            .map(|(a, b)| (a - b).powi(2))
            .sum();
        assert!(sse.is_finite());
    }

    #[test]
    fn online_matches_offline_zero_epsilon() {
        // ε = 0 forces a knot at every slope change; reconstruction exact.
        let v = [0.0, 1.0, 2.0, 1.0, 0.0, 5.0];
        let k = compress(&v, 0.0);
        let rec = reconstruct(&k, v.len());
        for (a, b) in v.iter().zip(&rec) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}
