//! DFT synopsis baseline. The paper evaluated Fourier too and found it
//! "consistently worse than DCT"; we keep it so that claim is checkable.
//!
//! For a real signal only bins `0..=n/2` are independent; we threshold on
//! those and mirror the conjugate half at reconstruction. A retained bin
//! costs **3** values (index + real + imaginary part).

use sbr_core::MultiSeries;

use crate::fft::{dft, idft, Complex};
use crate::{allocate, Allocation, Compressor};

/// Keep the `k` highest-energy independent bins of the real-input DFT and
/// reconstruct. Bin energy is weighted ×2 for non-self-conjugate bins so the
/// choice is SSE-optimal under the mirroring.
pub fn approximate(values: &[f64], k: usize) -> Vec<f64> {
    let n = values.len();
    if n == 0 || k == 0 {
        return vec![0.0; n];
    }
    let spec = dft(&values
        .iter()
        .map(|&v| Complex::new(v, 0.0))
        .collect::<Vec<_>>());
    let half = n / 2;
    let mut bins: Vec<usize> = (0..=half).collect();
    let weight = |b: usize| {
        let w = if b == 0 || (n.is_multiple_of(2) && b == half) {
            1.0
        } else {
            2.0
        };
        spec[b].norm_sq() * w
    };
    bins.sort_by(|&a, &b| weight(b).total_cmp(&weight(a)));
    let mut kept = vec![Complex::default(); n];
    for &b in bins.iter().take(k) {
        kept[b] = spec[b];
        if b != 0 && !(n.is_multiple_of(2) && b == half) {
            kept[n - b] = spec[b].conj();
        }
    }
    idft(&kept).into_iter().map(|c| c.re).collect()
}

/// The Fourier baseline (3 values per retained bin).
#[derive(Debug, Clone, Copy)]
pub struct FourierCompressor {
    /// Budget split strategy.
    pub allocation: Allocation,
}

impl Default for FourierCompressor {
    fn default() -> Self {
        FourierCompressor {
            allocation: Allocation::PerSignal,
        }
    }
}

impl Compressor for FourierCompressor {
    fn name(&self) -> &'static str {
        match self.allocation {
            Allocation::Concatenated => "Fourier",
            Allocation::PerSignal => "Fourier (per-signal)",
        }
    }

    fn compress_reconstruct(&self, data: &MultiSeries, budget_values: usize) -> Vec<f64> {
        allocate(self.allocation, data, budget_values, |row, budget| {
            approximate(row, budget / 3)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| {
                (2.0 * std::f64::consts::PI * 3.0 * i as f64 / n as f64).sin() * 5.0
                    + (2.0 * std::f64::consts::PI * 7.0 * i as f64 / n as f64).cos()
            })
            .collect()
    }

    #[test]
    fn full_budget_reconstructs_exactly() {
        for n in [8usize, 15, 32] {
            let x = signal(n);
            let rec = approximate(&x, n / 2 + 1);
            for (a, b) in x.iter().zip(&rec) {
                assert!((a - b).abs() < 1e-8, "n = {n}");
            }
        }
    }

    #[test]
    fn two_tones_need_two_bins() {
        let x = signal(64);
        let rec = approximate(&x, 2);
        let err: f64 = x.iter().zip(&rec).map(|(a, b)| (a - b).powi(2)).sum();
        assert!(err < 1e-16 * 64.0 + 1e-9, "two pure tones, two bins: {err}");
    }

    #[test]
    fn reconstruction_is_real_valued_and_sized() {
        let data = MultiSeries::from_rows(&[signal(40)]).unwrap();
        let rec = FourierCompressor::default().compress_reconstruct(&data, 9);
        assert_eq!(rec.len(), 40);
        assert!(rec.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn error_monotone_in_bins() {
        let x: Vec<f64> = (0..100).map(|i| ((i * i) % 31) as f64).collect();
        let mut prev = f64::INFINITY;
        for k in [1usize, 3, 10, 30, 51] {
            let rec = approximate(&x, k);
            let err: f64 = x.iter().zip(&rec).map(|(a, b)| (a - b).powi(2)).sum();
            assert!(err <= prev + 1e-9);
            prev = err;
        }
    }
}
