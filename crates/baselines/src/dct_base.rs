//! `GetBaseDCT()` (paper appendix): a base signal of cosine intervals
//! `cos((2i+1)πf / 2W)`, one per frequency `f`.
//!
//! These intervals are synthesized on the fly: they cost no sensor memory
//! and no bandwidth. The trade-off is that they are data-oblivious — the
//! experiments (Table 5) show the data-driven `GetBase` beating them.

use sbr_core::config::BaseBuilder;
use sbr_core::{ErrorMetric, MultiSeries};

/// One cosine base interval at frequency `f` (`0 ≤ f ≤ W`).
pub fn cosine_interval(w: usize, f: usize) -> Vec<f64> {
    (0..w)
        .map(|i| (std::f64::consts::PI * (2 * i + 1) as f64 * f as f64 / (2.0 * w as f64)).cos())
        .collect()
}

/// The flat cosine base signal holding frequencies `0..n_intervals`.
pub fn dct_base_signal(w: usize, n_intervals: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(w * n_intervals);
    for f in 0..n_intervals {
        out.extend(cosine_interval(w, f));
    }
    out
}

/// [`BaseBuilder`] adapter: propose the first `max_ins` cosine frequencies.
///
/// Note that when plugged into an `SbrEncoder` these intervals *are*
/// charged bandwidth like any insertion; the zero-cost variant of the paper
/// is exercised by the Table 5 harness, which hands
/// [`dct_base_signal`] directly to `GetIntervals`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DctBaseBuilder;

impl BaseBuilder for DctBaseBuilder {
    fn build(
        &self,
        _data: &MultiSeries,
        w: usize,
        max_ins: usize,
        _metric: ErrorMetric,
    ) -> Vec<Vec<f64>> {
        (0..max_ins.min(w + 1))
            .map(|f| cosine_interval(w, f))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_zero_is_constant_one() {
        let c = cosine_interval(8, 0);
        assert!(c.iter().all(|&v| (v - 1.0).abs() < 1e-12));
    }

    #[test]
    fn intervals_are_orthogonal() {
        let w = 16;
        for f1 in 0..4 {
            for f2 in (f1 + 1)..4 {
                let a = cosine_interval(w, f1);
                let b = cosine_interval(w, f2);
                let dot: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
                assert!(dot.abs() < 1e-9, "f{f1}·f{f2} = {dot}");
            }
        }
    }

    #[test]
    fn flat_signal_concatenates() {
        let flat = dct_base_signal(4, 3);
        assert_eq!(flat.len(), 12);
        assert_eq!(&flat[..4], cosine_interval(4, 0).as_slice());
        assert_eq!(&flat[8..], cosine_interval(4, 2).as_slice());
    }

    #[test]
    fn cosine_base_explains_cosine_data() {
        // A pure cosine at frequency 2 is perfectly approximated against
        // the matching base interval.
        let w = 16;
        let y: Vec<f64> = cosine_interval(w, 2)
            .iter()
            .map(|v| 3.0 * v + 1.0)
            .collect();
        let base = dct_base_signal(w, 4);
        let f = sbr_core::regression::fit_sse(&base[2 * w..3 * w], &y);
        assert!(f.err < 1e-12);
        assert!((f.a - 3.0).abs() < 1e-9);
    }

    #[test]
    fn builder_caps_at_w_plus_one_frequencies() {
        use sbr_core::config::BaseBuilder as _;
        let data = MultiSeries::from_rows(&[vec![0.0; 16]]).unwrap();
        let b = DctBaseBuilder.build(&data, 4, 100, ErrorMetric::Sse);
        assert_eq!(b.len(), 5);
    }
}
