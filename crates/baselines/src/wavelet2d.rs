//! Two-dimensional Haar decomposition of the `N × M` batch matrix.
//!
//! §5.1 of the paper: *"we also considered a 2-dimensional decomposition of
//! the `N × M` values, which produced worse results than the 1-dimensional
//! decomposition"*. This module exists so that claim is checkable — the
//! ablation binary compares all three wavelet variants.
//!
//! The transform is the standard (non-standard-order) separable 2-D Haar:
//! alternate one level of row transforms with one level of column
//! transforms on the shrinking approximation quadrant. Rows and columns of
//! odd length carry their trailing element, as in the 1-D code, keeping the
//! transform orthogonal for every shape.

use sbr_core::MultiSeries;

use crate::{Compressor, SQRT2_INV};

/// A dense row-major matrix buffer used by the transform.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major data.
    pub data: Vec<f64>,
}

impl Matrix {
    /// Build from a batch.
    pub fn from_series(s: &MultiSeries) -> Self {
        Matrix {
            rows: s.n_signals(),
            cols: s.samples_per_signal(),
            data: s.flat().to_vec(),
        }
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.data[r * self.cols + c] = v;
    }
}

/// One Haar level along a 1-D strip: pairs → (avg, diff)·√2⁻¹, odd tail
/// carried. `strip` holds `len` values; approximation lands in the front
/// half (`⌈len/2⌉`), details in the back.
fn level_1d(strip: &mut [f64], len: usize, scratch: &mut Vec<f64>) {
    let pairs = len / 2;
    scratch.clear();
    scratch.extend_from_slice(&strip[..len]);
    for i in 0..pairs {
        strip[i] = (scratch[2 * i] + scratch[2 * i + 1]) * SQRT2_INV;
        strip[len.div_ceil(2) + i] = (scratch[2 * i] - scratch[2 * i + 1]) * SQRT2_INV;
    }
    if len % 2 == 1 {
        strip[pairs] = scratch[len - 1];
    }
}

/// Inverse of [`level_1d`].
fn unlevel_1d(strip: &mut [f64], len: usize, scratch: &mut Vec<f64>) {
    let pairs = len / 2;
    let half = len.div_ceil(2);
    scratch.clear();
    scratch.extend_from_slice(&strip[..len]);
    for i in 0..pairs {
        let s = scratch[i];
        let d = scratch[half + i];
        strip[2 * i] = (s + d) * SQRT2_INV;
        strip[2 * i + 1] = (s - d) * SQRT2_INV;
    }
    if len % 2 == 1 {
        strip[len - 1] = scratch[pairs];
    }
}

/// Forward 2-D Haar: returns the coefficient matrix (same shape).
pub fn forward(m: &Matrix) -> Matrix {
    let mut out = m.clone();
    let mut scratch = Vec::new();
    let mut strip = Vec::new();
    let (mut ar, mut ac) = (m.rows, m.cols); // active quadrant
    while ar > 1 || ac > 1 {
        if ac > 1 {
            for r in 0..ar {
                strip.clear();
                strip.extend((0..ac).map(|c| out.at(r, c)));
                level_1d(&mut strip, ac, &mut scratch);
                for (c, &v) in strip.iter().enumerate().take(ac) {
                    out.set(r, c, v);
                }
            }
            ac = ac.div_ceil(2);
        }
        if ar > 1 {
            for c in 0..ac {
                strip.clear();
                strip.extend((0..ar).map(|r| out.at(r, c)));
                level_1d(&mut strip, ar, &mut scratch);
                for (r, &v) in strip.iter().enumerate().take(ar) {
                    out.set(r, c, v);
                }
            }
            ar = ar.div_ceil(2);
        }
    }
    out
}

/// Inverse 2-D Haar.
pub fn inverse(coeffs: &Matrix) -> Matrix {
    // Reconstruct the sequence of (ar, ac) quadrant shapes the forward pass
    // went through, then undo them in reverse.
    let mut shapes = Vec::new();
    let (mut ar, mut ac) = (coeffs.rows, coeffs.cols);
    while ar > 1 || ac > 1 {
        let row_step = ac > 1;
        let col_step = ar > 1;
        shapes.push((ar, ac, row_step, col_step));
        if row_step {
            ac = ac.div_ceil(2);
        }
        if col_step {
            ar = ar.div_ceil(2);
        }
    }
    let mut out = coeffs.clone();
    let mut scratch = Vec::new();
    let mut strip = Vec::new();
    for &(ar, ac, row_step, col_step) in shapes.iter().rev() {
        // Forward did rows then columns inside one level; invert in reverse
        // order. Column inversion operates at the post-row-step width.
        let ac_after_rows = if row_step { ac.div_ceil(2) } else { ac };
        if col_step {
            for c in 0..ac_after_rows {
                strip.clear();
                strip.extend((0..ar).map(|r| out.at(r, c)));
                unlevel_1d(&mut strip, ar, &mut scratch);
                for (r, &v) in strip.iter().enumerate().take(ar) {
                    out.set(r, c, v);
                }
            }
        }
        if row_step {
            for r in 0..ar {
                strip.clear();
                strip.extend((0..ac).map(|c| out.at(r, c)));
                unlevel_1d(&mut strip, ac, &mut scratch);
                for (c, &v) in strip.iter().enumerate().take(ac) {
                    out.set(r, c, v);
                }
            }
        }
    }
    out
}

/// Keep the `k` largest coefficients and reconstruct.
pub fn approximate(m: &Matrix, k: usize) -> Matrix {
    let mut coeffs = forward(m);
    let mut idx: Vec<usize> = (0..coeffs.data.len()).collect();
    idx.sort_by(|&a, &b| coeffs.data[b].abs().total_cmp(&coeffs.data[a].abs()));
    let mut kept = vec![0.0; coeffs.data.len()];
    for &i in idx.iter().take(k) {
        kept[i] = coeffs.data[i];
    }
    coeffs.data = kept;
    inverse(&coeffs)
}

/// The 2-D wavelet baseline (2 values per retained coefficient).
#[derive(Debug, Clone, Copy, Default)]
pub struct Wavelet2dCompressor;

impl Compressor for Wavelet2dCompressor {
    fn name(&self) -> &'static str {
        "Wavelets (2-D)"
    }

    fn compress_reconstruct(&self, data: &MultiSeries, budget_values: usize) -> Vec<f64> {
        let m = Matrix::from_series(data);
        approximate(&m, budget_values / 2).data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matrix(rows: usize, cols: usize) -> Matrix {
        Matrix {
            rows,
            cols,
            data: (0..rows * cols)
                .map(|i| ((i * 7919) % 101) as f64 * 0.3 - 15.0)
                .collect(),
        }
    }

    #[test]
    fn roundtrip_various_shapes() {
        for (r, c) in [(1, 8), (8, 1), (4, 4), (3, 5), (6, 33), (7, 7)] {
            let m = matrix(r, c);
            let back = inverse(&forward(&m));
            for (a, b) in m.data.iter().zip(&back.data) {
                assert!((a - b).abs() < 1e-9, "shape {r}×{c}");
            }
        }
    }

    #[test]
    fn transform_is_orthogonal() {
        let m = matrix(5, 12);
        let c = forward(&m);
        let em: f64 = m.data.iter().map(|v| v * v).sum();
        let ec: f64 = c.data.iter().map(|v| v * v).sum();
        assert!((em - ec).abs() < 1e-8 * em);
    }

    #[test]
    fn constant_matrix_concentrates_in_one_coefficient() {
        let m = Matrix {
            rows: 4,
            cols: 8,
            data: vec![3.0; 32],
        };
        let c = forward(&m);
        let nonzero = c.data.iter().filter(|v| v.abs() > 1e-9).count();
        assert_eq!(nonzero, 1);
        let rec = approximate(&m, 1);
        for v in rec.data {
            assert!((v - 3.0).abs() < 1e-9);
        }
    }

    #[test]
    fn identical_rows_compress_better_in_2d_than_1d_per_row() {
        // N identical wiggly rows: 2-D can spend one coefficient set for
        // all rows; per-row 1-D pays N times.
        let row: Vec<f64> = (0..64).map(|i| (i as f64 * 0.4).sin() * 5.0).collect();
        let rows: Vec<Vec<f64>> = (0..8).map(|_| row.clone()).collect();
        let data = MultiSeries::from_rows(&rows).unwrap();
        let budget = 64; // 32 coefficients
        let d2 = Wavelet2dCompressor.compress_reconstruct(&data, budget);
        let d1 = crate::wavelet::WaveletCompressor {
            allocation: crate::Allocation::PerSignal,
        }
        .compress_reconstruct(&data, budget);
        let sse = |rec: &[f64]| -> f64 {
            data.flat()
                .iter()
                .zip(rec)
                .map(|(a, b)| (a - b).powi(2))
                .sum()
        };
        assert!(sse(&d2) < sse(&d1));
    }

    #[test]
    fn compressor_shape() {
        let data = MultiSeries::from_rows(&[vec![1.0; 20], vec![2.0; 20], vec![3.0; 20]]).unwrap();
        let rec = Wavelet2dCompressor.compress_reconstruct(&data, 10);
        assert_eq!(rec.len(), 60);
    }
}
