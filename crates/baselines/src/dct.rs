//! Orthonormal DCT-II/III with largest-coefficient thresholding — the
//! `mpeg`-style transform baseline of the paper (Ahmed, Natarajan, Rao
//! 1974).
//!
//! The forward/inverse pair uses the FFT kernel (radix-2 or Bluestein), so
//! every chunk size in the evaluation gets `O(n log n)`. A naive `O(n²)`
//! reference implementation is kept for cross-checking.

use sbr_core::MultiSeries;

use crate::fft::{dft, Complex};
use crate::{allocate, Allocation, Compressor};

/// Forward orthonormal DCT-II:
/// `C_k = α_k Σ_i x_i cos(π (2i+1) k / 2n)`, `α_0 = √(1/n)`, `α_k = √(2/n)`.
pub fn forward(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    // Makhoul's reordering: v[i] = x[2i], v[n-1-i] = x[2i+1]; then
    // C_k = Re( e^{-iπk/2n} · DFT(v)_k ).
    let mut v = vec![Complex::default(); n];
    for i in 0..n.div_ceil(2) {
        v[i] = Complex::new(x[2 * i], 0.0);
    }
    for i in 0..n / 2 {
        v[n - 1 - i] = Complex::new(x[2 * i + 1], 0.0);
    }
    let spec = dft(&v);
    let mut out = Vec::with_capacity(n);
    let norm0 = (1.0 / n as f64).sqrt();
    let norm = (2.0 / n as f64).sqrt();
    for (k, s) in spec.iter().enumerate() {
        let tw = Complex::cis(-std::f64::consts::PI * k as f64 / (2.0 * n as f64));
        let c = (*s * tw).re;
        out.push(c * if k == 0 { norm0 } else { norm });
    }
    out
}

/// Inverse orthonormal DCT (DCT-III):
/// `x_i = Σ_k α_k C_k cos(π (2i+1) k / 2n)`.
///
/// Computed by inverting Makhoul's mapping with one inverse DFT.
pub fn inverse(c: &[f64]) -> Vec<f64> {
    let n = c.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![c[0]];
    }
    // Undo the normalization, then rebuild the DFT spectrum of Makhoul's
    // reordered sequence. Writing T_k = e^{-iπk/2n}·DFT(v)_k, the forward
    // pass kept C_k = Re(T_k); the conjugate symmetry of a real input gives
    // Im(T_k) = -C_{n-k}, hence DFT(v)_k = e^{iπk/2n}(C_k - i·C_{n-k}).
    let norm0 = (n as f64).sqrt();
    let norm = (n as f64 / 2.0).sqrt();
    let cu: Vec<f64> = c
        .iter()
        .enumerate()
        .map(|(k, &v)| v * if k == 0 { norm0 } else { norm })
        .collect();
    let mut spec = vec![Complex::default(); n];
    spec[0] = Complex::new(cu[0], 0.0);
    for k in 1..n {
        let t = Complex::new(cu[k], -cu[n - k]);
        let tw = Complex::cis(std::f64::consts::PI * k as f64 / (2.0 * n as f64));
        spec[k] = tw * t;
    }
    let v = crate::fft::idft(&spec);
    let mut x = vec![0.0f64; n];
    for i in 0..n.div_ceil(2) {
        x[2 * i] = v[i].re;
    }
    for i in 0..n / 2 {
        x[2 * i + 1] = v[n - 1 - i].re;
    }
    x
}

/// Naive `O(n²)` DCT-II, for cross-checking the fast path.
pub fn forward_naive(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    let norm0 = (1.0 / n as f64).sqrt();
    let norm = (2.0 / n as f64).sqrt();
    (0..n)
        .map(|k| {
            let s: f64 = x
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    v * (std::f64::consts::PI * (2 * i + 1) as f64 * k as f64 / (2.0 * n as f64))
                        .cos()
                })
                .sum();
            s * if k == 0 { norm0 } else { norm }
        })
        .collect()
}

/// Naive `O(n²)` inverse (DCT-III), for cross-checking.
pub fn inverse_naive(c: &[f64]) -> Vec<f64> {
    let n = c.len();
    let norm0 = (1.0 / n as f64).sqrt();
    let norm = (2.0 / n as f64).sqrt();
    (0..n)
        .map(|i| {
            c.iter()
                .enumerate()
                .map(|(k, &v)| {
                    let alpha = if k == 0 { norm0 } else { norm };
                    alpha
                        * v
                        * (std::f64::consts::PI * (2 * i + 1) as f64 * k as f64 / (2.0 * n as f64))
                            .cos()
                })
                .sum()
        })
        .collect()
}

/// End-to-end synopsis: transform, keep the `k` largest coefficients,
/// reconstruct (SSE-optimal — the basis is orthonormal).
pub fn approximate(values: &[f64], k: usize) -> Vec<f64> {
    let coeffs = forward(values);
    let keep = crate::wavelet::top_k(&coeffs, k);
    inverse(&crate::wavelet::densify(&keep, values.len()))
}

/// The DCT baseline: a retained coefficient costs two values
/// (index + coefficient).
#[derive(Debug, Clone, Copy)]
pub struct DctCompressor {
    /// Budget split strategy.
    pub allocation: Allocation,
}

impl Default for DctCompressor {
    fn default() -> Self {
        DctCompressor {
            allocation: Allocation::PerSignal,
        }
    }
}

impl Compressor for DctCompressor {
    fn name(&self) -> &'static str {
        match self.allocation {
            Allocation::Concatenated => "DCT",
            Allocation::PerSignal => "DCT (per-signal)",
        }
    }

    fn compress_reconstruct(&self, data: &MultiSeries, budget_values: usize) -> Vec<f64> {
        allocate(self.allocation, data, budget_values, |row, budget| {
            approximate(row, budget / 2)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn signal(n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| (i as f64 * 0.21).sin() * 3.0 + (i as f64 * 0.011).cos() * 7.0)
            .collect()
    }

    #[test]
    fn fast_matches_naive_forward() {
        for n in [1usize, 2, 3, 8, 15, 32, 100] {
            let x = signal(n);
            let fast = forward(&x);
            let naive = forward_naive(&x);
            for (a, b) in fast.iter().zip(&naive) {
                assert!((a - b).abs() < 1e-8, "n = {n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn fast_matches_naive_inverse() {
        for n in [2usize, 3, 8, 15, 32] {
            let c = signal(n);
            let fast = inverse(&c);
            let naive = inverse_naive(&c);
            for (a, b) in fast.iter().zip(&naive) {
                assert!((a - b).abs() < 1e-8, "n = {n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn roundtrip() {
        for n in [1usize, 2, 5, 16, 33, 128] {
            let x = signal(n);
            let back = inverse(&forward(&x));
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-8, "n = {n}");
            }
        }
    }

    #[test]
    fn orthonormal_energy_preservation() {
        let x = signal(200);
        let c = forward(&x);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ec: f64 = c.iter().map(|v| v * v).sum();
        assert!((ex - ec).abs() < 1e-7 * ex);
    }

    #[test]
    fn single_cosine_concentrates() {
        // x = cos(π(2i+1)·3/2n): exactly DCT bin 3.
        let n = 64;
        let x: Vec<f64> = (0..n)
            .map(|i| (std::f64::consts::PI * (2 * i + 1) as f64 * 3.0 / (2.0 * n as f64)).cos())
            .collect();
        let c = forward(&x);
        for (k, v) in c.iter().enumerate() {
            if k == 3 {
                assert!(v.abs() > 1.0);
            } else {
                assert!(v.abs() < 1e-8, "bin {k} leaked {v}");
            }
        }
    }

    #[test]
    fn smooth_signal_compresses_well() {
        // Off-bin sinusoids leak, but 32 of 256 bins must still capture
        // almost all the energy of a two-tone signal.
        let x = signal(256);
        let rec = approximate(&x, 32);
        let err: f64 = x.iter().zip(&rec).map(|(a, b)| (a - b).powi(2)).sum();
        let energy: f64 = x.iter().map(|v| v * v).sum();
        assert!(
            err < 1e-2 * energy,
            "relative error {:.3e} too large",
            err / energy
        );
    }

    #[test]
    fn compressor_reconstruction_shape() {
        let data = MultiSeries::from_rows(&[signal(50), signal(50)]).unwrap();
        let rec = DctCompressor::default().compress_reconstruct(&data, 24);
        assert_eq!(rec.len(), 100);
    }
}
