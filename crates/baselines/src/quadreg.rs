//! Piecewise *quadratic* regression over time: the simplest instance of the
//! non-linear encodings the paper's conclusions propose, packaged as a
//! standalone compressor so the ablation bench can measure whether the
//! extra coefficient earns its bandwidth.
//!
//! An interval costs **4** values (`start, a, b, c`); the recursive
//! worst-first splitting mirrors `GetIntervals`.

use std::collections::BinaryHeap;

use sbr_core::quadratic::{fit_quadratic_index, QuadFit};
use sbr_core::MultiSeries;

use crate::Compressor;

/// One fitted quadratic interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QuadInterval {
    /// Offset into the concatenated series.
    pub start: usize,
    /// Samples covered.
    pub length: usize,
    /// The fitted parabola (over the local index `0..length`).
    pub fit: QuadFit,
}

/// Number of transmitted values per quadratic interval.
pub const INTERVAL_COST: usize = 4;

struct HeapItem(QuadInterval);
impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.0.fit.err == other.0.fit.err
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.fit.err.total_cmp(&other.0.fit.err)
    }
}

/// Split the batch into at most `budget_values / 4` quadratic intervals,
/// worst interval first.
pub fn approximate(data: &MultiSeries, budget_values: usize) -> Vec<QuadInterval> {
    let n_signals = data.n_signals();
    let m = data.samples_per_signal();
    let y = data.flat();
    let max_intervals = budget_values / INTERVAL_COST;
    if max_intervals < n_signals {
        return Vec::new();
    }

    let fit_at = |start: usize, length: usize| -> QuadInterval {
        QuadInterval {
            start,
            length,
            fit: fit_quadratic_index(&y[start..start + length]),
        }
    };

    let mut heap = BinaryHeap::with_capacity(max_intervals);
    let mut frozen = Vec::new();
    for i in 0..n_signals {
        heap.push(HeapItem(fit_at(i * m, m)));
    }
    let mut count = n_signals;
    while count < max_intervals {
        let worst = loop {
            match heap.pop() {
                Some(HeapItem(iv)) if iv.length >= 2 => break Some(iv),
                Some(HeapItem(iv)) => frozen.push(iv),
                None => break None,
            }
        };
        let Some(worst) = worst else { break };
        // lint:allow(float-eq): exact-fit early exit; tolerance would change segment splits
        if worst.fit.err == 0.0 {
            heap.push(HeapItem(worst));
            break;
        }
        let left = worst.length / 2;
        heap.push(HeapItem(fit_at(worst.start, left)));
        heap.push(HeapItem(fit_at(worst.start + left, worst.length - left)));
        count += 1;
    }
    let mut out: Vec<QuadInterval> = frozen;
    out.extend(heap.into_iter().map(|h| h.0));
    out.sort_by_key(|iv| iv.start);
    out
}

/// Expand quadratic intervals back into a dense sequence.
pub fn reconstruct(intervals: &[QuadInterval], n: usize) -> Vec<f64> {
    let mut out = vec![0.0f64; n];
    for iv in intervals {
        for i in 0..iv.length.min(n.saturating_sub(iv.start)) {
            out[iv.start + i] = iv.fit.eval(i as f64);
        }
    }
    out
}

/// The piecewise-quadratic baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuadRegCompressor;

impl Compressor for QuadRegCompressor {
    fn name(&self) -> &'static str {
        "Quadratic Regression"
    }

    fn compress_reconstruct(&self, data: &MultiSeries, budget_values: usize) -> Vec<f64> {
        let ivs = approximate(data, budget_values);
        if ivs.is_empty() {
            return vec![0.0; data.len()];
        }
        reconstruct(&ivs, data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sse(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
    }

    #[test]
    fn exact_on_piecewise_parabolas() {
        let mut row = Vec::new();
        row.extend((0..32).map(|i| 0.5 * (i * i) as f64));
        row.extend((0..32).map(|i| -(i as f64) * (i as f64) + 40.0 * i as f64));
        let data = MultiSeries::from_rows(std::slice::from_ref(&row)).unwrap();
        let rec = QuadRegCompressor.compress_reconstruct(&data, 16); // 4 intervals
        assert!(sse(&row, &rec) < 1e-6, "sse {}", sse(&row, &rec));
    }

    #[test]
    fn intervals_partition_batch() {
        let row: Vec<f64> = (0..100).map(|i| ((i * 31) % 17) as f64).collect();
        let data = MultiSeries::from_rows(&[row]).unwrap();
        let ivs = approximate(&data, 40);
        let mut cursor = 0;
        for iv in &ivs {
            assert_eq!(iv.start, cursor);
            cursor += iv.length;
        }
        assert_eq!(cursor, 100);
        assert!(ivs.len() <= 10);
    }

    #[test]
    fn beats_linear_on_curvy_data_same_budget() {
        // Smooth curvature: each quadratic interval tracks what a line
        // cannot, even though quadratics get fewer intervals per value.
        let row: Vec<f64> = (0..256)
            .map(|i| {
                let t = i as f64 / 256.0;
                (t * std::f64::consts::PI * 2.0).sin() * 100.0
            })
            .collect();
        let data = MultiSeries::from_rows(std::slice::from_ref(&row)).unwrap();
        let budget = 24;
        let quad = QuadRegCompressor.compress_reconstruct(&data, budget);
        let lin = crate::linreg::LinRegCompressor::default().compress_reconstruct(&data, budget);
        assert!(
            sse(&row, &quad) < sse(&row, &lin),
            "quad {} vs lin {}",
            sse(&row, &quad),
            sse(&row, &lin)
        );
    }

    #[test]
    fn budget_too_small_yields_zero_fill() {
        let data = MultiSeries::from_rows(&[vec![1.0; 8], vec![2.0; 8]]).unwrap();
        let rec = QuadRegCompressor.compress_reconstruct(&data, 4);
        assert_eq!(rec, vec![0.0; 16]);
    }
}
