//! V-optimal histograms: the strongest piecewise-constant partition under
//! SSE (Jagadish et al.), included as an upper bound on what any histogram
//! baseline could achieve in Tables 2–4.
//!
//! Two constructions:
//!
//! * [`build_exact`] — the classic `O(n² · B)` dynamic program. Exact, for
//!   modest inputs and for validating the approximation.
//! * [`build_greedy`] — bottom-up merging of adjacent buckets by least SSE
//!   increase, `O(n log n)`; near-optimal in practice and fast enough for
//!   the evaluation's chunk sizes.

use std::collections::BinaryHeap;

use sbr_core::MultiSeries;

use crate::histogram::{reconstruct, Bucket};
use crate::{allocate, Allocation, Compressor};

/// Prefix sums supporting O(1) bucket SSE queries:
/// `sse(s, e) = Σ v² − (Σ v)² / len` over `[s, e)`.
struct Pre {
    sum: Vec<f64>,
    sq: Vec<f64>,
}

impl Pre {
    fn new(v: &[f64]) -> Self {
        let mut sum = Vec::with_capacity(v.len() + 1);
        let mut sq = Vec::with_capacity(v.len() + 1);
        sum.push(0.0);
        sq.push(0.0);
        let (mut s, mut s2) = (0.0, 0.0);
        for &x in v {
            s += x;
            s2 += x * x;
            sum.push(s);
            sq.push(s2);
        }
        Pre { sum, sq }
    }

    #[inline]
    fn sse(&self, s: usize, e: usize) -> f64 {
        let n = (e - s) as f64;
        let sum = self.sum[e] - self.sum[s];
        let sq = self.sq[e] - self.sq[s];
        (sq - sum * sum / n).max(0.0)
    }

    #[inline]
    fn mean(&self, s: usize, e: usize) -> f64 {
        (self.sum[e] - self.sum[s]) / (e - s) as f64
    }
}

/// Exact V-optimal partition into at most `k` buckets (`O(n²k)` time,
/// `O(nk)` space).
pub fn build_exact(values: &[f64], k: usize) -> Vec<Bucket> {
    let n = values.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    let pre = Pre::new(values);
    // dp[b][i]: min SSE of covering [0, i) with b+1 buckets.
    let mut dp = vec![vec![f64::INFINITY; n + 1]; k];
    let mut cut = vec![vec![0usize; n + 1]; k];
    for (i, slot) in dp[0].iter_mut().enumerate().skip(1) {
        *slot = pre.sse(0, i);
    }
    for b in 1..k {
        for i in (b + 1)..=n {
            for j in b..i {
                let cand = dp[b - 1][j] + pre.sse(j, i);
                if cand < dp[b][i] {
                    dp[b][i] = cand;
                    cut[b][i] = j;
                }
            }
        }
    }
    // Pick the best bucket count ≤ k (more buckets never hurt, but guard
    // against n < k degeneracies), then walk the cuts back.
    let mut best_b = 0;
    for b in 0..k {
        if dp[b][n] < dp[best_b][n] - 1e-15 {
            best_b = b;
        }
    }
    let mut bounds = vec![n];
    let mut b = best_b;
    let mut i = n;
    while b > 0 {
        i = cut[b][i];
        bounds.push(i);
        b -= 1;
    }
    bounds.push(0);
    bounds.reverse();
    bounds.dedup();
    bounds
        .windows(2)
        .map(|w| Bucket {
            start: w[0],
            end: w[1],
            value: pre.mean(w[0], w[1]),
        })
        .collect()
}

/// Greedy bottom-up merge: start from singleton buckets, repeatedly merge
/// the adjacent pair whose union increases SSE least.
pub fn build_greedy(values: &[f64], k: usize) -> Vec<Bucket> {
    let n = values.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    let k = k.min(n);
    let pre = Pre::new(values);

    // Doubly linked list of bucket boundaries + lazy-deletion heap of merge
    // candidates, keyed by -cost (min-heap behaviour on a max-heap).
    #[derive(PartialEq)]
    struct Cand {
        cost: f64,
        left: usize,
        stamp: (u64, u64),
    }
    impl Eq for Cand {}
    impl PartialOrd for Cand {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Cand {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other.cost.total_cmp(&self.cost)
        }
    }

    // Buckets as (start, end) addressed by their start; versioned to
    // invalidate stale heap entries.
    let mut end = vec![0usize; n + 1]; // end[s] = bucket end for bucket starting at s
    let mut prev = vec![usize::MAX; n + 1];
    let mut next = vec![usize::MAX; n + 1];
    let mut version = vec![0u64; n + 1];
    for s in 0..n {
        end[s] = s + 1;
        prev[s] = if s == 0 { usize::MAX } else { s - 1 };
        next[s] = if s + 1 < n { s + 1 } else { usize::MAX };
    }

    let merge_cost = |pre: &Pre, s: usize, mid_end: usize, e: usize| -> f64 {
        pre.sse(s, e) - pre.sse(s, mid_end) - pre.sse(mid_end, e)
    };

    let mut heap: BinaryHeap<Cand> = BinaryHeap::new();
    for s in 0..n {
        if next[s] != usize::MAX {
            let r = next[s];
            heap.push(Cand {
                cost: merge_cost(&pre, s, end[s], end[r]),
                left: s,
                stamp: (version[s], version[r]),
            });
        }
    }

    let mut buckets = n;
    while buckets > k {
        // lint:allow(panic-reachability): the heap holds one merge candidate per bucket boundary
        let c = heap.pop().expect("candidates exist while buckets > k");
        let l = c.left;
        let r = next[l];
        if r == usize::MAX || (version[l], version[r]) != c.stamp {
            continue; // stale
        }
        // Merge r into l.
        end[l] = end[r];
        next[l] = next[r];
        if next[l] != usize::MAX {
            prev[next[l]] = l;
        }
        version[l] += 1;
        version[r] += 1;
        buckets -= 1;
        if prev[l] != usize::MAX {
            let p = prev[l];
            heap.push(Cand {
                cost: merge_cost(&pre, p, end[p], end[l]),
                left: p,
                stamp: (version[p], version[l]),
            });
        }
        if next[l] != usize::MAX {
            let q = next[l];
            heap.push(Cand {
                cost: merge_cost(&pre, l, end[l], end[q]),
                left: l,
                stamp: (version[l], version[q]),
            });
        }
    }

    let mut out = Vec::with_capacity(buckets);
    let mut s = 0usize;
    while s != usize::MAX {
        out.push(Bucket {
            start: s,
            end: end[s],
            value: pre.mean(s, end[s]),
        });
        s = next[s];
    }
    out
}

/// The V-optimal (greedy-merge) histogram baseline, 2 values per bucket.
#[derive(Debug, Clone, Copy, Default)]
pub struct VOptimalCompressor;

impl Compressor for VOptimalCompressor {
    fn name(&self) -> &'static str {
        "Histograms (v-optimal)"
    }

    fn compress_reconstruct(&self, data: &MultiSeries, budget_values: usize) -> Vec<f64> {
        allocate(Allocation::PerSignal, data, budget_values, |row, budget| {
            reconstruct(&build_greedy(row, budget / 2), row.len())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sse_of(values: &[f64], buckets: &[Bucket]) -> f64 {
        let rec = reconstruct(buckets, values.len());
        values.iter().zip(&rec).map(|(a, b)| (a - b).powi(2)).sum()
    }

    #[test]
    fn exact_beats_every_other_partition_small() {
        // Brute-force all 2-bucket partitions of a short series.
        let v = [1.0, 1.5, 8.0, 8.2, 8.4, 2.0];
        let opt = build_exact(&v, 2);
        let opt_sse = sse_of(&v, &opt);
        for cut in 1..v.len() {
            let manual = [
                Bucket {
                    start: 0,
                    end: cut,
                    value: v[..cut].iter().sum::<f64>() / cut as f64,
                },
                Bucket {
                    start: cut,
                    end: v.len(),
                    value: v[cut..].iter().sum::<f64>() / (v.len() - cut) as f64,
                },
            ];
            assert!(opt_sse <= sse_of(&v, &manual) + 1e-9);
        }
    }

    #[test]
    fn exact_is_zero_on_piecewise_constant() {
        let mut v = vec![4.0; 10];
        v.extend(vec![-1.0; 7]);
        v.extend(vec![9.0; 5]);
        let b = build_exact(&v, 3);
        assert!(sse_of(&v, &b) < 1e-12);
    }

    #[test]
    fn greedy_matches_exact_on_clean_steps() {
        let mut v = vec![2.0; 8];
        v.extend(vec![10.0; 8]);
        v.extend(vec![-3.0; 8]);
        let g = build_greedy(&v, 3);
        assert!(sse_of(&v, &g) < 1e-12);
        assert_eq!(g.len(), 3);
    }

    #[test]
    fn greedy_close_to_exact_on_noisy_data() {
        let v: Vec<f64> = (0..64)
            .map(|i| ((i * 37) % 11) as f64 + if i > 30 { 50.0 } else { 0.0 })
            .collect();
        for k in [2usize, 4, 8] {
            let e = sse_of(&v, &build_exact(&v, k));
            let g = sse_of(&v, &build_greedy(&v, k));
            assert!(g <= e * 1.6 + 1e-9, "k={k}: greedy {g} vs exact {e}");
        }
    }

    #[test]
    fn partitions_are_well_formed() {
        let v: Vec<f64> = (0..50).map(|i| (i as f64 * 0.7).sin()).collect();
        for k in [1usize, 3, 10, 50] {
            for b in [build_exact(&v, k), build_greedy(&v, k)] {
                assert!(b.len() <= k);
                assert_eq!(b[0].start, 0);
                assert_eq!(b.last().unwrap().end, 50);
                for w in b.windows(2) {
                    assert_eq!(w[0].end, w[1].start);
                }
            }
        }
    }

    #[test]
    fn voptimal_beats_equidepth() {
        let v: Vec<f64> = (0..128)
            .map(|i| if (i / 16) % 2 == 0 { 1.0 } else { 20.0 } + (i % 3) as f64 * 0.1)
            .collect();
        let vo = sse_of(&v, &build_greedy(&v, 8));
        let ed = sse_of(
            &v,
            &crate::histogram::build(&v, 8, crate::histogram::Bucketing::EquiDepth),
        );
        assert!(vo <= ed, "v-optimal {vo} vs equi-depth {ed}");
    }

    #[test]
    fn compressor_shape() {
        let data =
            MultiSeries::from_rows(&[(0..40).map(|i| i as f64).collect::<Vec<_>>()]).unwrap();
        let rec = VOptimalCompressor.compress_reconstruct(&data, 12);
        assert_eq!(rec.len(), 40);
    }
}
