//! # Baselines for the SBR evaluation
//!
//! Every comparator used in the SIGMOD 2004 evaluation, implemented from
//! scratch (no external signal-processing crates):
//!
//! * [`wavelet`] — Haar wavelet decomposition with largest-coefficient
//!   thresholding (the synopsis technique of Chakrabarti et al. / Vitter &
//!   Wang the paper compares against),
//! * [`dct`] — the Discrete Cosine Transform (orthonormal DCT-II/III) with
//!   an `O(n log n)` FFT fast path,
//! * [`fourier`] — the Discrete Fourier Transform (kept, as in the paper,
//!   mainly to confirm it trails DCT),
//! * [`histogram`] — piecewise-constant bucket approximations (equi-depth,
//!   equi-width, max-diff),
//! * [`linreg`] — plain piecewise linear regression with the same recursive
//!   splitting as SBR but no base signal,
//! * [`svd`] — a cyclic-Jacobi symmetric eigensolver powering
//!   `GetBaseSVD()` (appendix of the paper),
//! * [`dct_base`] — the cosine base signal `GetBaseDCT()` (appendix),
//! * [`fft`] — the shared complex FFT kernel (radix-2 + Bluestein),
//!   re-exported from the `sbr-dsp` leaf crate it moved to so that
//!   `sbr-core`'s cross-correlation kernel can share it.
//!
//! All methods implement the [`Compressor`] trait so the benchmark harness
//! can sweep them uniformly under the paper's equal-space convention (§5.1):
//! a transform coefficient or histogram bucket costs **2** values
//! (index/boundary + value), an SBR interval costs 4, a plain-regression
//! interval costs 3, an inserted base interval costs `W + 1`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod dct;
pub mod dct_base;
pub use sbr_dsp::fft;
pub mod fourier;
pub mod histogram;
pub mod linreg;
pub mod quadreg;
pub mod svd;
pub mod swing;
pub mod v_optimal;
pub mod wavelet;
pub mod wavelet2d;

use sbr_core::MultiSeries;

pub(crate) const SQRT2_INV: f64 = std::f64::consts::FRAC_1_SQRT_2;

/// A lossy compressor operating under a bandwidth budget expressed in
/// *values*, the paper's equal-space convention.
pub trait Compressor {
    /// Short human-readable name for report rows.
    fn name(&self) -> &'static str;

    /// Compress `data` to at most `budget_values` values and return the
    /// reconstruction of the concatenated series.
    fn compress_reconstruct(&self, data: &MultiSeries, budget_values: usize) -> Vec<f64>;
}

/// How a transform/bucket method distributes its budget over the `N` input
/// signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Allocation {
    /// Treat the batch as one concatenated series and pick the globally
    /// best coefficients — the variant the paper found strongest for
    /// Wavelets ("some signals needed more coefficients than others").
    Concatenated,
    /// Split the budget equally among the `N` signals.
    PerSignal,
}

/// Helper shared by the transform baselines: run `f` either once over the
/// concatenated series or once per signal with an equal budget split.
pub(crate) fn allocate(
    alloc: Allocation,
    data: &MultiSeries,
    budget_values: usize,
    mut f: impl FnMut(&[f64], usize) -> Vec<f64>,
) -> Vec<f64> {
    match alloc {
        Allocation::Concatenated => f(data.flat(), budget_values),
        Allocation::PerSignal => {
            let per = budget_values / data.n_signals();
            let mut out = Vec::with_capacity(data.len());
            for row in data.rows() {
                out.extend(f(row, per));
            }
            out
        }
    }
}
