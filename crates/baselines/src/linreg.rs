//! Plain piecewise linear regression: SBR's recursive splitting without a
//! base signal. This is both the "Linear Regression" column of Table 5 and
//! SBR's internal fall-back made into a standalone method.
//!
//! With no base signal there is no `shift` pointer, so an interval costs
//! **3** values (`start, a, b`) and a budget of `TotalBand` buys
//! `TotalBand / 3` intervals (§5.2).

use sbr_core::config::SbrConfig;
use sbr_core::get_intervals::{get_intervals, reconstruct_flat};
use sbr_core::interval::IntervalRecord;
use sbr_core::{ErrorMetric, MultiSeries};

use crate::Compressor;

/// Number of transmitted values per plain-regression interval.
pub const INTERVAL_COST: usize = 3;

/// Approximate a batch with at most `budget_values / 3` linear-regression
/// intervals chosen by recursive worst-first splitting.
pub fn approximate(
    data: &MultiSeries,
    budget_values: usize,
    metric: ErrorMetric,
) -> Vec<IntervalRecord> {
    let n_intervals = budget_values / INTERVAL_COST;
    // Reuse GetIntervals with an empty base signal: every interval then uses
    // the fall-back. GetIntervals charges 4 per interval, so scale the
    // budget to buy the same count.
    let mut config = SbrConfig::new(n_intervals * 4, 0).with_metric(metric);
    config.update_base = false;
    let w = config.w_for(data.len());
    match get_intervals(&[], data, n_intervals * 4, w, &config) {
        Ok(approx) => approx.intervals.iter().map(|iv| iv.record()).collect(),
        Err(_) => Vec::new(),
    }
}

/// Reconstruct from plain-regression records.
pub fn reconstruct(records: &[IntervalRecord], n: usize) -> Vec<f64> {
    reconstruct_flat(&[], records, n).unwrap_or_else(|_| vec![0.0; n])
}

/// The linear-regression baseline.
#[derive(Debug, Clone, Copy, Default)]
pub struct LinRegCompressor {
    /// Metric the splits optimize.
    pub metric: ErrorMetric,
}

impl Compressor for LinRegCompressor {
    fn name(&self) -> &'static str {
        "Linear Regression"
    }

    fn compress_reconstruct(&self, data: &MultiSeries, budget_values: usize) -> Vec<f64> {
        let recs = approximate(data, budget_values, self.metric);
        if recs.is_empty() {
            return vec![0.0; data.len()];
        }
        reconstruct(&recs, data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sse(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
    }

    #[test]
    fn piecewise_linear_data_is_exact() {
        // Two linear pieces per row → 4 intervals ⇒ 12 values suffice.
        let mut row = Vec::new();
        row.extend((0..32).map(|i| 2.0 * i as f64));
        row.extend((0..32).map(|i| 100.0 - 3.0 * i as f64));
        let data = MultiSeries::from_rows(std::slice::from_ref(&row)).unwrap();
        let rec = LinRegCompressor::default().compress_reconstruct(&data, 12);
        assert!(sse(&row, &rec) < 1e-9);
    }

    #[test]
    fn all_records_are_fallback() {
        let data =
            MultiSeries::from_rows(&[(0..64).map(|i| (i as f64 * 0.4).sin()).collect::<Vec<_>>()])
                .unwrap();
        let recs = approximate(&data, 30, ErrorMetric::Sse);
        assert!(!recs.is_empty());
        assert!(recs.iter().all(|r| r.shift < 0));
    }

    #[test]
    fn budget_buys_band_over_three_intervals() {
        let data =
            MultiSeries::from_rows(&[(0..128).map(|i| ((i * 17) % 23) as f64).collect::<Vec<_>>()])
                .unwrap();
        let recs = approximate(&data, 33, ErrorMetric::Sse);
        assert!(recs.len() <= 11);
        assert!(recs.len() >= 8, "splitting should use the budget");
    }

    #[test]
    fn error_improves_with_budget() {
        let row: Vec<f64> = (0..256).map(|i| (i as f64 * 0.13).sin() * 10.0).collect();
        let data = MultiSeries::from_rows(std::slice::from_ref(&row)).unwrap();
        let mut prev = f64::INFINITY;
        for budget in [6usize, 12, 24, 48, 96] {
            let rec = LinRegCompressor::default().compress_reconstruct(&data, budget);
            let e = sse(&row, &rec);
            assert!(e <= prev + 1e-9);
            prev = e;
        }
    }

    #[test]
    fn impossible_budget_yields_zero_fill() {
        let data = MultiSeries::from_rows(&[vec![1.0; 8], vec![2.0; 8]]).unwrap();
        // 3 values < 2 signals × 3 → no valid approximation.
        let rec = LinRegCompressor::default().compress_reconstruct(&data, 3);
        assert_eq!(rec, vec![0.0; 16]);
    }
}
