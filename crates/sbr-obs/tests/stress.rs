//! Concurrency: many workers hammering the same handles must lose no
//! updates — counters and histogram totals come out exact.

use sbr_obs::{MetricsRecorder, Recorder};

#[test]
fn counter_and_histogram_totals_are_exact_under_contention() {
    let rec = MetricsRecorder::new();
    let counter = rec.counter("stress.shared.counter");
    let hist = rec.histogram("stress.shared.hist_ns");

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .max(4);
    let per_worker = 50_000u64;

    std::thread::scope(|scope| {
        for w in 0..workers {
            let counter = counter.clone();
            let hist = hist.clone();
            scope.spawn(move || {
                for i in 0..per_worker {
                    counter.inc();
                    // Spread samples over many buckets, deterministically.
                    hist.record((w as u64 * per_worker + i) % 4096);
                }
            });
        }
    });

    let snap = rec.snapshot();
    let n = workers as u64 * per_worker;
    assert_eq!(snap.counter("stress.shared.counter"), Some(n));

    let h = snap.histogram("stress.shared.hist_ns").unwrap();
    assert_eq!(h.count, n);
    let bucket_total: u64 = h.buckets.iter().map(|(_, c)| c).sum();
    assert_eq!(bucket_total, n, "every sample lands in exactly one bucket");

    // The value stream per worker is (w*per_worker + i) % 4096; the exact
    // sum is checkable because each worker covers whole residue cycles
    // plus a deterministic remainder.
    let expect_sum: u64 = (0..workers as u64)
        .map(|w| {
            (0..per_worker)
                .map(|i| (w * per_worker + i) % 4096)
                .sum::<u64>()
        })
        .sum();
    assert_eq!(h.sum, expect_sum);
    assert_eq!(h.min, 0);
    assert_eq!(h.max, 4095);
}

#[test]
fn snapshot_is_consistent_while_writers_run() {
    // Snapshots taken mid-flight must be internally sane (count equals
    // bucket total may lag sum slightly — we only require monotonicity
    // and no torn values).
    let rec = MetricsRecorder::new();
    let counter = rec.counter("stress.live.counter");
    std::thread::scope(|scope| {
        let writer = counter.clone();
        scope.spawn(move || {
            for _ in 0..200_000 {
                writer.inc();
            }
        });
        let mut last = 0;
        for _ in 0..50 {
            let snap = rec.snapshot();
            let now = snap.counter("stress.live.counter").unwrap();
            assert!(now >= last, "counter went backwards: {last} -> {now}");
            last = now;
        }
    });
    assert_eq!(rec.snapshot().counter("stress.live.counter"), Some(200_000));
}
