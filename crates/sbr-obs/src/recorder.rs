//! The [`Recorder`] trait, its live and no-op implementations, and the
//! [`Span`] scoped timer.

use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, Write};
use std::path::Path;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::handles::{Counter, Gauge, Histogram};
use crate::snapshot::{HistogramSnapshot, MetricValue, Snapshot};
use crate::{json, TRACE_ENV};

/// Sink for metrics handles and structured trace events.
///
/// Metric names are fully qualified as `crate.module.name` (with optional
/// extra segments, e.g. a node id). Requesting the same name twice
/// returns handles sharing the same storage.
pub trait Recorder: fmt::Debug + Send + Sync {
    /// Whether this recorder keeps anything at all. Callers may use this
    /// to skip building event payloads; handles are safe to use either
    /// way.
    fn enabled(&self) -> bool;

    /// A counter handle registered under `name`.
    fn counter(&self, name: &str) -> Counter;

    /// A gauge handle registered under `name`.
    fn gauge(&self, name: &str) -> Gauge;

    /// A histogram handle registered under `name`.
    fn histogram(&self, name: &str) -> Histogram;

    /// Emit one structured trace event. `dur_ns` is the span duration for
    /// timing events; `fields` are extra key/value pairs. Recorders
    /// without a trace sink drop events.
    fn emit(&self, name: &str, dur_ns: Option<u64>, fields: &[(&str, &str)]);

    /// Freeze every registered metric.
    fn snapshot(&self) -> Snapshot;
}

/// A recorder that records nothing; every handle it returns is disabled.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }
    fn counter(&self, _name: &str) -> Counter {
        Counter::noop()
    }
    fn gauge(&self, _name: &str) -> Gauge {
        Gauge::noop()
    }
    fn histogram(&self, _name: &str) -> Histogram {
        Histogram::noop()
    }
    fn emit(&self, _name: &str, _dur_ns: Option<u64>, _fields: &[(&str, &str)]) {}
    fn snapshot(&self) -> Snapshot {
        Snapshot::default()
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// The live recorder: an interning registry of handles plus an optional
/// line-delimited JSON trace sink.
///
/// Trace events are one JSON object per line with a monotonic `ts_ns`
/// (nanoseconds since the recorder was created), e.g.:
///
/// ```text
/// {"ts_ns":184467,"name":"sbr_core.sbr.encode_ns","dur_ns":152003,"seq":"4"}
/// ```
pub struct MetricsRecorder {
    origin: Instant,
    metrics: Mutex<BTreeMap<String, Metric>>,
    trace: Option<Mutex<Box<dyn Write + Send>>>,
}

impl fmt::Debug for MetricsRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MetricsRecorder")
            .field(
                "metrics",
                &self
                    .metrics
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .len(),
            )
            .field("trace", &self.trace.is_some())
            .finish()
    }
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRecorder {
    /// A recorder with metrics only (no trace sink).
    pub fn new() -> Self {
        MetricsRecorder {
            origin: Instant::now(),
            metrics: Mutex::new(BTreeMap::new()),
            trace: None,
        }
    }

    /// A recorder that also appends trace events to `writer`, one JSON
    /// object per line, flushed per event.
    pub fn with_trace_writer(writer: Box<dyn Write + Send>) -> Self {
        MetricsRecorder {
            origin: Instant::now(),
            metrics: Mutex::new(BTreeMap::new()),
            trace: Some(Mutex::new(writer)),
        }
    }

    /// A recorder appending trace events to the file at `path` (created
    /// or truncated).
    pub fn with_trace_path(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::with_trace_writer(Box::new(io::BufWriter::new(file))))
    }

    /// A recorder appending trace events to the file at `path` without
    /// truncating it — for late writers (e.g. error reporting) that must
    /// not clobber events an earlier recorder already wrote.
    pub fn with_trace_path_append(path: impl AsRef<Path>) -> io::Result<Self> {
        let file = std::fs::File::options()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Self::with_trace_writer(Box::new(io::BufWriter::new(file))))
    }

    /// A recorder honoring the [`TRACE_ENV`] (`SBR_TRACE`) environment
    /// variable: when set and non-empty, trace events go to that file.
    pub fn from_env() -> io::Result<Self> {
        match std::env::var(TRACE_ENV) {
            Ok(path) if !path.is_empty() => Self::with_trace_path(path),
            _ => Ok(Self::new()),
        }
    }

    fn intern<T: Clone>(
        &self,
        name: &str,
        make: impl FnOnce() -> Metric,
        pick: impl Fn(&Metric) -> Option<T>,
    ) -> T {
        let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = metrics.entry(name.to_string()).or_insert_with(make);
        pick(entry)
            // lint:allow(panic-reachability): re-registering a metric name with a different type is a programming error, not runtime data
            .unwrap_or_else(|| panic!("metric '{name}' already registered with a different type"))
    }
}

impl Recorder for MetricsRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn counter(&self, name: &str) -> Counter {
        self.intern(
            name,
            || Metric::Counter(Counter::live()),
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    fn gauge(&self, name: &str) -> Gauge {
        self.intern(
            name,
            || Metric::Gauge(Gauge::live()),
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    fn histogram(&self, name: &str) -> Histogram {
        self.intern(
            name,
            || Metric::Histogram(Histogram::live()),
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    fn emit(&self, name: &str, dur_ns: Option<u64>, fields: &[(&str, &str)]) {
        let Some(sink) = &self.trace else {
            return;
        };
        let ts_ns = self.origin.elapsed().as_nanos() as u64;
        let mut line = format!("{{\"ts_ns\":{ts_ns},\"name\":{}", json::escape(name));
        if let Some(d) = dur_ns {
            line.push_str(&format!(",\"dur_ns\":{d}"));
        }
        for (k, v) in fields {
            line.push_str(&format!(",{}:{}", json::escape(k), json::escape(v)));
        }
        line.push_str("}\n");
        let mut w = sink.lock().unwrap_or_else(PoisonError::into_inner);
        // Trace I/O is best-effort; a full disk must not take encoding down.
        let _ = w.write_all(line.as_bytes());
        let _ = w.flush();
    }

    fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        Snapshot {
            metrics: metrics
                .iter()
                .map(|(name, m)| {
                    let v = match m {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => {
                            MetricValue::Histogram(HistogramSnapshot::from_histogram(h))
                        }
                    };
                    (name.clone(), v)
                })
                .collect(),
        }
    }
}

/// A scoped timer: records elapsed nanoseconds into a histogram on drop
/// and, when a tracing recorder is supplied, emits a trace event. Spans
/// nest naturally as stack values; a span whose histogram is disabled and
/// whose recorder is absent never reads the clock.
#[derive(Debug)]
pub struct Span {
    name: &'static str,
    hist: Histogram,
    trace: Option<Arc<dyn Recorder>>,
    start: Option<Instant>,
}

impl Span {
    /// A span that does nothing.
    pub fn noop() -> Self {
        Span {
            name: "",
            hist: Histogram::noop(),
            trace: None,
            start: None,
        }
    }

    /// Start timing. The clock is only read when the histogram is live or
    /// `recorder` is an enabled tracer.
    pub fn start(
        name: &'static str,
        hist: &Histogram,
        recorder: Option<&Arc<dyn Recorder>>,
    ) -> Self {
        let trace = recorder.filter(|r| r.enabled()).cloned();
        let on = hist.is_enabled() || trace.is_some();
        Span {
            name,
            hist: hist.clone(),
            trace,
            start: on.then(Instant::now),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(t0) = self.start {
            let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.hist.record(ns);
            if let Some(r) = &self.trace {
                r.emit(self.name, Some(ns), &[]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_intern_by_name() {
        let rec = MetricsRecorder::new();
        let a = rec.counter("x.y.n");
        let b = rec.counter("x.y.n");
        a.inc();
        b.add(2);
        assert_eq!(rec.snapshot().counter("x.y.n"), Some(3));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn type_mismatch_panics() {
        let rec = MetricsRecorder::new();
        let _ = rec.counter("x.y.n");
        let _ = rec.gauge("x.y.n");
    }

    #[test]
    fn span_records_and_traces() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));

        #[derive(Debug, Clone)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, data: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }

        let rec: Arc<dyn Recorder> = Arc::new(MetricsRecorder::with_trace_writer(Box::new(
            SharedBuf(Arc::clone(&buf)),
        )));
        let h = rec.histogram("t.m.span_ns");
        {
            let _outer = Span::start("t.m.span_ns", &h, Some(&rec));
            let _inner = Span::start("t.m.span_ns", &h, Some(&rec));
        }
        assert_eq!(rec.snapshot().histogram("t.m.span_ns").unwrap().count, 2);

        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v = json::parse(line).unwrap();
            assert_eq!(v.get("name").unwrap().as_str(), Some("t.m.span_ns"));
            assert!(v.get("dur_ns").unwrap().as_u64().is_some());
            assert!(v.get("ts_ns").unwrap().as_u64().is_some());
        }
    }

    #[test]
    fn emit_writes_fields() {
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        #[derive(Debug)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, data: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(data);
                Ok(data.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let rec = MetricsRecorder::with_trace_writer(Box::new(SharedBuf(Arc::clone(&buf))));
        rec.emit(
            "cli.error",
            None,
            &[("kind", "usage"), ("msg", "bad \"flag\"")],
        );
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        let v = json::parse(text.trim()).unwrap();
        assert_eq!(v.get("kind").unwrap().as_str(), Some("usage"));
        assert_eq!(v.get("msg").unwrap().as_str(), Some("bad \"flag\""));
        assert!(v.get("dur_ns").is_none());
    }

    #[test]
    fn noop_recorder_is_inert() {
        let rec = NoopRecorder;
        let c = rec.counter("a.b.c");
        c.inc();
        assert!(!rec.enabled());
        assert_eq!(c.get(), 0);
        assert!(rec.snapshot().is_empty());
    }
}
