//! Frame-lifecycle timeline: a bounded in-memory ring of timestamped
//! per-frame events.
//!
//! Aggregate counters say *how many* frames were dropped or resynced;
//! the timeline says *which* frame, *where* in the
//! node → link → base-station path, and *when*. Every v2 frame is
//! identified by [`FrameId`] `(node, epoch, seq)` — a purely
//! observer-side identity: nothing here touches the wire format, and the
//! differential suites pin the stream bytes to stay identical whether a
//! timeline is attached or not.
//!
//! The ring is bounded ([`DEFAULT_TIMELINE_CAPACITY`] events by default)
//! so a 100k-node simulation cannot grow it without limit; overflow
//! evicts the oldest event and increments the
//! `obs.timeline.dropped_events` counter instead of allocating.
//!
//! Like the metric handles, a disabled (`None`) timeline is a single
//! branch per call — the zero-overhead contract instrumented code relies
//! on when tracing is off.

use std::collections::VecDeque;
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Instant;

use crate::handles::Counter;
use crate::recorder::Recorder;

/// Default event capacity of a live timeline (~64k events, ≈ 3 MiB).
pub const DEFAULT_TIMELINE_CAPACITY: usize = 65_536;

/// Name of the overflow counter a recorder-backed timeline registers.
pub const TIMELINE_DROPPED_METRIC: &str = "obs.timeline.dropped_events";

/// Observer-side identity of one v2 frame: which sensor emitted it, in
/// which ARQ epoch, at which stream sequence number. Never serialized to
/// the wire; rendered and parsed as `node:epoch:seq`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FrameId {
    /// Originating sensor node id.
    pub node: u32,
    /// ARQ epoch the frame was encoded under (bumped on resync).
    pub epoch: u32,
    /// Transmission sequence number within the stream.
    pub seq: u64,
}

impl FrameId {
    /// Construct from the three components.
    pub fn new(node: u32, epoch: u32, seq: u64) -> Self {
        FrameId { node, epoch, seq }
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.node, self.epoch, self.seq)
    }
}

impl FromStr for FrameId {
    type Err = String;

    /// Parse the `node:epoch:seq` form (the one `Display` emits and the
    /// CLI `--frame` filter accepts).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut parts = s.split(':');
        let (Some(node), Some(epoch), Some(seq), None) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("frame id '{s}' is not node:epoch:seq"));
        };
        let node = node
            .parse::<u32>()
            .map_err(|_| format!("frame id '{s}': bad node '{node}'"))?;
        let epoch = epoch
            .parse::<u32>()
            .map_err(|_| format!("frame id '{s}': bad epoch '{epoch}'"))?;
        let seq = seq
            .parse::<u64>()
            .map_err(|_| format!("frame id '{s}': bad seq '{seq}'"))?;
        Ok(FrameId { node, epoch, seq })
    }
}

/// One step of a frame's life. The `value` member of
/// [`TimelineEvent`] qualifies the kinds that need a number (retransmit
/// depth, hop index, round).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// The SBR encoder produced the frame's transmission.
    Encoded,
    /// The frame entered the node's retransmission queue.
    Queued,
    /// First radio transmission attempt.
    Tx,
    /// Retransmission; `value` carries the attempt number (1-based).
    Retx,
    /// The channel dropped the frame this round.
    Dropped,
    /// The base station discarded it as a duplicate.
    Dup,
    /// The base station rejected it as corrupt (CRC mismatch).
    Corrupt,
    /// A cumulative ACK released it from the retx queue; `value` carries
    /// the RTT in ARQ rounds since first transmission.
    Acked,
    /// The base station decoded its payload.
    Decoded,
    /// The decoded chunks were appended to base-station storage.
    Persisted,
    /// The frame triggered (or carried) an epoch resync.
    Resynced,
}

impl EventKind {
    /// Canonical lowercase name (stable: used in trace logs and filters).
    pub fn as_str(&self) -> &'static str {
        match self {
            EventKind::Encoded => "encoded",
            EventKind::Queued => "queued",
            EventKind::Tx => "tx",
            EventKind::Retx => "retx",
            EventKind::Dropped => "dropped",
            EventKind::Dup => "dup",
            EventKind::Corrupt => "corrupt",
            EventKind::Acked => "acked",
            EventKind::Decoded => "decoded",
            EventKind::Persisted => "persisted",
            EventKind::Resynced => "resynced",
        }
    }

    /// Inverse of [`EventKind::as_str`].
    pub fn parse(s: &str) -> Option<EventKind> {
        Some(match s {
            "encoded" => EventKind::Encoded,
            "queued" => EventKind::Queued,
            "tx" => EventKind::Tx,
            "retx" => EventKind::Retx,
            "dropped" => EventKind::Dropped,
            "dup" => EventKind::Dup,
            "corrupt" => EventKind::Corrupt,
            "acked" => EventKind::Acked,
            "decoded" => EventKind::Decoded,
            "persisted" => EventKind::Persisted,
            "resynced" => EventKind::Resynced,
            _ => return None,
        })
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One timestamped lifecycle event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimelineEvent {
    /// Nanoseconds since the timeline was created.
    pub ts_ns: u64,
    /// The frame this event belongs to.
    pub frame: FrameId,
    /// What happened.
    pub kind: EventKind,
    /// Kind-specific qualifier (retx attempt, ACK RTT in rounds, hop
    /// index); 0 when the kind carries no number.
    pub value: u64,
}

/// Shared storage behind a live [`Timeline`].
#[derive(Debug)]
struct TimelineCore {
    origin: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<TimelineEvent>>,
    dropped: Counter,
}

/// A bounded ring buffer of [`TimelineEvent`]s, cheap to clone and share
/// across the network simulation. The default (`None`) form is disabled:
/// every operation is a single branch.
#[derive(Clone, Debug, Default)]
pub struct Timeline(Option<Arc<TimelineCore>>);

impl Timeline {
    /// A disabled timeline; all operations are a single branch.
    pub fn noop() -> Self {
        Timeline(None)
    }

    /// A live timeline holding at most `capacity` events (oldest evicted
    /// first). The overflow counter is private; prefer
    /// [`Timeline::with_recorder`] so overflow lands in snapshots.
    pub fn live(capacity: usize) -> Self {
        Timeline(Some(Arc::new(TimelineCore {
            origin: Instant::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1024))),
            dropped: Counter::live(),
        })))
    }

    /// A live timeline whose overflow counter is registered with
    /// `recorder` as [`TIMELINE_DROPPED_METRIC`], so snapshots report how
    /// many events the ring evicted.
    pub fn with_recorder(recorder: &dyn Recorder, capacity: usize) -> Self {
        let dropped = recorder.counter(TIMELINE_DROPPED_METRIC);
        Timeline(Some(Arc::new(TimelineCore {
            origin: Instant::now(),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.clamp(1, 1024))),
            dropped,
        })))
    }

    /// Whether this handle is backed by storage.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record an event with no qualifier.
    #[inline]
    pub fn record(&self, frame: FrameId, kind: EventKind) {
        self.record_value(frame, kind, 0);
    }

    /// Record an event with a kind-specific qualifier (retx attempt, RTT
    /// in rounds, hop index).
    #[inline]
    pub fn record_value(&self, frame: FrameId, kind: EventKind, value: u64) {
        let Some(core) = &self.0 else { return };
        let ts_ns = core.origin.elapsed().as_nanos() as u64;
        let mut ring = core.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if ring.len() >= core.capacity {
            ring.pop_front();
            core.dropped.inc();
        }
        ring.push_back(TimelineEvent {
            ts_ns,
            frame,
            kind,
            value,
        });
    }

    /// All buffered events, oldest first (empty when disabled).
    pub fn events(&self) -> Vec<TimelineEvent> {
        self.0.as_ref().map_or_else(Vec::new, |core| {
            core.ring
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .copied()
                .collect()
        })
    }

    /// The buffered history of one frame, oldest first.
    pub fn frame_history(&self, frame: FrameId) -> Vec<TimelineEvent> {
        self.0.as_ref().map_or_else(Vec::new, |core| {
            core.ring
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .iter()
                .filter(|e| e.frame == frame)
                .copied()
                .collect()
        })
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        self.0.as_ref().map_or(0, |core| {
            core.ring
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        })
    }

    /// Whether no events are buffered (also true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// How many events the ring has evicted to stay within capacity.
    pub fn dropped_events(&self) -> u64 {
        self.0.as_ref().map_or(0, |core| core.dropped.get())
    }

    /// The configured capacity (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.0.as_ref().map_or(0, |core| core.capacity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRecorder;

    fn fid(node: u32, epoch: u32, seq: u64) -> FrameId {
        FrameId::new(node, epoch, seq)
    }

    #[test]
    fn frame_id_round_trips_through_display() {
        let id = fid(3, 1, 42);
        assert_eq!(id.to_string(), "3:1:42");
        assert_eq!("3:1:42".parse::<FrameId>().unwrap(), id);
        for bad in ["", "1:2", "1:2:3:4", "a:2:3", "1:b:3", "1:2:c", ":::"] {
            assert!(bad.parse::<FrameId>().is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn kind_names_round_trip() {
        use EventKind::*;
        for k in [
            Encoded, Queued, Tx, Retx, Dropped, Dup, Corrupt, Acked, Decoded, Persisted, Resynced,
        ] {
            assert_eq!(EventKind::parse(k.as_str()), Some(k));
        }
        assert_eq!(EventKind::parse("warp"), None);
    }

    #[test]
    fn records_and_reconstructs_frame_history() {
        let tl = Timeline::live(128);
        let a = fid(1, 0, 0);
        let b = fid(2, 0, 0);
        tl.record(a, EventKind::Encoded);
        tl.record(b, EventKind::Encoded);
        tl.record(a, EventKind::Tx);
        tl.record_value(a, EventKind::Retx, 1);
        tl.record_value(a, EventKind::Acked, 2);
        let hist = tl.frame_history(a);
        let kinds: Vec<_> = hist.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            [
                EventKind::Encoded,
                EventKind::Tx,
                EventKind::Retx,
                EventKind::Acked
            ]
        );
        assert_eq!(hist[2].value, 1);
        assert_eq!(hist[3].value, 2);
        // Timestamps are monotone within the buffer.
        let all = tl.events();
        assert!(all.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert_eq!(tl.len(), 5);
        assert_eq!(tl.dropped_events(), 0);
    }

    #[test]
    fn ring_caps_memory_and_counts_overflow() {
        let rec = MetricsRecorder::new();
        let tl = Timeline::with_recorder(&rec, 8);
        for seq in 0..20u64 {
            tl.record(fid(1, 0, seq), EventKind::Tx);
        }
        assert_eq!(tl.len(), 8);
        assert_eq!(tl.dropped_events(), 12);
        // Oldest events were evicted; the ring holds the newest 8.
        let first = tl.events()[0];
        assert_eq!(first.frame.seq, 12);
        // The overflow counter is a registered metric.
        assert_eq!(rec.snapshot().counter(TIMELINE_DROPPED_METRIC), Some(12));
    }

    #[test]
    fn disabled_timeline_is_inert() {
        let tl = Timeline::noop();
        tl.record(fid(1, 0, 0), EventKind::Tx);
        assert!(!tl.is_enabled());
        assert!(tl.is_empty());
        assert_eq!(tl.events(), []);
        assert_eq!(tl.dropped_events(), 0);
        assert_eq!(tl.capacity(), 0);
    }

    #[test]
    fn clones_share_the_ring() {
        let tl = Timeline::live(16);
        let tl2 = tl.clone();
        tl.record(fid(1, 0, 0), EventKind::Tx);
        tl2.record(fid(1, 0, 0), EventKind::Acked);
        assert_eq!(tl.len(), 2);
        assert_eq!(tl2.frame_history(fid(1, 0, 0)).len(), 2);
    }
}
