//! Point-in-time freeze of every registered metric, with JSON round-trip.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

use crate::handles::{bucket_lower_bound, Histogram};
use crate::json::{self, Value};

/// Schema tag written by [`Snapshot::to_json`].
pub const SNAPSHOT_SCHEMA: &str = "sbr-obs/v1";

/// Frozen histogram statistics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples (wrapping).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// `(bucket lower bound, sample count)` for every non-empty bucket,
    /// ascending. Bucket boundaries are powers of two; see
    /// [`crate::bucket_index`].
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    pub(crate) fn from_histogram(h: &Histogram) -> Self {
        let Some(core) = h.core() else {
            return HistogramSnapshot::default();
        };
        let count = core.count.load(Ordering::Relaxed);
        let buckets = core
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_lower_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: core.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                core.min.load(Ordering::Relaxed)
            },
            max: core.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    fn to_json_value(&self) -> Value {
        Value::Obj(vec![
            ("type".into(), Value::Str("histogram".into())),
            ("count".into(), Value::Num(self.count as f64)),
            ("sum".into(), Value::Num(self.sum as f64)),
            ("min".into(), Value::Num(self.min as f64)),
            ("max".into(), Value::Num(self.max as f64)),
            (
                "buckets".into(),
                Value::Arr(
                    self.buckets
                        .iter()
                        .map(|(lo, n)| {
                            Value::Arr(vec![Value::Num(*lo as f64), Value::Num(*n as f64)])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// One frozen metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter total.
    Counter(u64),
    /// A gauge's last value.
    Gauge(f64),
    /// Histogram statistics.
    Histogram(HistogramSnapshot),
}

/// An ordered map of fully-qualified metric name → frozen value.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// The metrics, keyed by `crate.module.name`.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// Counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(n)) => Some(*n),
            _ => None,
        }
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram statistics by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Whether no metrics were registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The metrics map as a JSON object (name → typed value), ready to
    /// embed inside a larger document (e.g. a `sbr-bench/v2` record).
    pub fn to_json_value(&self) -> Value {
        Value::Obj(
            self.metrics
                .iter()
                .map(|(name, m)| {
                    let v = match m {
                        MetricValue::Counter(n) => Value::Obj(vec![
                            ("type".into(), Value::Str("counter".into())),
                            ("value".into(), Value::Num(*n as f64)),
                        ]),
                        MetricValue::Gauge(g) => Value::Obj(vec![
                            ("type".into(), Value::Str("gauge".into())),
                            ("value".into(), Value::Num(*g)),
                        ]),
                        MetricValue::Histogram(h) => h.to_json_value(),
                    };
                    (name.clone(), v)
                })
                .collect(),
        )
    }

    /// Serialize as a standalone `sbr-obs/v1` document.
    pub fn to_json(&self) -> String {
        Value::Obj(vec![
            ("schema".into(), Value::Str(SNAPSHOT_SCHEMA.into())),
            ("metrics".into(), self.to_json_value()),
        ])
        .to_string()
    }

    /// Rebuild from the JSON object produced by [`Snapshot::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<Snapshot, String> {
        let members = v.as_obj().ok_or("metrics must be a JSON object")?;
        let mut metrics = BTreeMap::new();
        for (name, m) in members {
            let ty = m
                .get("type")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("metric '{name}' has no type"))?;
            let parsed = match ty {
                "counter" => MetricValue::Counter(
                    m.get("value")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("counter '{name}' has no value"))?,
                ),
                "gauge" => MetricValue::Gauge(
                    m.get("value")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("gauge '{name}' has no value"))?,
                ),
                "histogram" => {
                    let field = |k: &str| {
                        m.get(k)
                            .and_then(Value::as_u64)
                            .ok_or_else(|| format!("histogram '{name}' has no {k}"))
                    };
                    let buckets = m
                        .get("buckets")
                        .and_then(Value::as_arr)
                        .ok_or_else(|| format!("histogram '{name}' has no buckets"))?
                        .iter()
                        .map(|pair| {
                            let pair = pair.as_arr().filter(|p| p.len() == 2);
                            match pair {
                                Some([lo, n]) => Ok((
                                    lo.as_u64().ok_or("bad bucket bound")?,
                                    n.as_u64().ok_or("bad bucket count")?,
                                )),
                                _ => Err(format!("histogram '{name}' has a bad bucket")),
                            }
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    MetricValue::Histogram(HistogramSnapshot {
                        count: field("count")?,
                        sum: field("sum")?,
                        min: field("min")?,
                        max: field("max")?,
                        buckets,
                    })
                }
                other => return Err(format!("metric '{name}' has unknown type '{other}'")),
            };
            metrics.insert(name.clone(), parsed);
        }
        Ok(Snapshot { metrics })
    }

    /// Parse a standalone document produced by [`Snapshot::to_json`].
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let v = json::parse(text)?;
        match v.get("schema").and_then(Value::as_str) {
            Some(SNAPSHOT_SCHEMA) => {}
            Some(other) => return Err(format!("unsupported snapshot schema '{other}'")),
            None => return Err("missing snapshot schema".to_string()),
        }
        Self::from_json_value(v.get("metrics").ok_or("missing metrics object")?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricsRecorder, Recorder};

    #[test]
    fn snapshot_round_trips_through_json() {
        let rec = MetricsRecorder::new();
        rec.counter("a.b.calls").add(7);
        rec.gauge("a.b.ratio").set(0.75);
        let h = rec.histogram("a.b.ns");
        for v in [0, 3, 900, 1 << 20] {
            h.record(v);
        }
        let snap = rec.snapshot();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(snap, back);
        assert_eq!(back.counter("a.b.calls"), Some(7));
        assert_eq!(back.gauge("a.b.ratio"), Some(0.75));
        let hist = back.histogram("a.b.ns").unwrap();
        assert_eq!(hist.count, 4);
        assert_eq!(hist.min, 0);
        assert_eq!(hist.max, 1 << 20);
    }

    #[test]
    fn empty_histogram_reports_zero_min() {
        let rec = MetricsRecorder::new();
        let _ = rec.histogram("never.recorded.ns");
        let snap = rec.snapshot();
        let h = snap.histogram("never.recorded.ns").unwrap();
        assert_eq!((h.count, h.min, h.max, h.mean()), (0, 0, 0, 0.0));
        assert!(h.buckets.is_empty());
    }
}
