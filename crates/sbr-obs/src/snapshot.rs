//! Point-in-time freeze of every registered metric, with JSON round-trip.

use std::collections::BTreeMap;
use std::sync::atomic::Ordering;

use crate::handles::{bucket_index, bucket_lower_bound, bucket_upper_bound, Histogram};
use crate::json::{self, Value};

/// Schema tag written by [`Snapshot::to_json`]. v2 adds precomputed
/// `p50`/`p90`/`p99` members to every histogram object; the bucket layout
/// moved from log2 to log-linear (see [`crate::bucket_index`]).
pub const SNAPSHOT_SCHEMA: &str = "sbr-obs/v2";

/// The previous schema tag, still accepted by [`Snapshot::from_json`]:
/// v1 documents differ only in bucket granularity and the absence of the
/// quantile members, both of which parse fine (quantiles are recomputed
/// from buckets, never parsed back).
pub const SNAPSHOT_SCHEMA_V1: &str = "sbr-obs/v1";

/// Frozen histogram statistics.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples (wrapping).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// `(bucket lower bound, sample count)` for every non-empty bucket,
    /// ascending. Bucket boundaries are powers of two; see
    /// [`crate::bucket_index`].
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Bounded-error quantile estimate for `q ∈ [0, 1]`.
    ///
    /// Walks the buckets until the cumulative count covers `q·count`, then
    /// returns that bucket's midpoint clamped to `[min, max]`, so the
    /// relative error is bounded by the bucket width (≤ 1/16 of the value;
    /// exact below 32). `q = 1.0` returns `max` exactly; an empty
    /// histogram returns 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q >= 1.0 {
            return self.max;
        }
        let target = ((q.max(0.0) * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for &(lo, n) in &self.buckets {
            cum += n;
            if cum >= target {
                let hi = bucket_upper_bound(bucket_index(lo));
                // Midpoint of the inclusive range [lo, hi-1]; exact
                // buckets (width 1) return lo itself.
                let mid = lo + (hi - lo - 1) / 2;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Median estimate (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    pub(crate) fn from_histogram(h: &Histogram) -> Self {
        let Some(core) = h.core() else {
            return HistogramSnapshot::default();
        };
        let count = core.count.load(Ordering::Relaxed);
        let buckets = core
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_lower_bound(i), n))
            })
            .collect();
        HistogramSnapshot {
            count,
            sum: core.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                core.min.load(Ordering::Relaxed)
            },
            max: core.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    fn to_json_value(&self) -> Value {
        Value::Obj(vec![
            ("type".into(), Value::Str("histogram".into())),
            ("count".into(), Value::Num(self.count as f64)),
            ("sum".into(), Value::Num(self.sum as f64)),
            ("min".into(), Value::Num(self.min as f64)),
            ("max".into(), Value::Num(self.max as f64)),
            // Derived quantiles, precomputed for direct consumers (jq,
            // dashboards). Parsing recomputes them from the buckets, so
            // they never drift from the data they summarize.
            ("p50".into(), Value::Num(self.p50() as f64)),
            ("p90".into(), Value::Num(self.p90() as f64)),
            ("p99".into(), Value::Num(self.p99() as f64)),
            (
                "buckets".into(),
                Value::Arr(
                    self.buckets
                        .iter()
                        .map(|(lo, n)| {
                            Value::Arr(vec![Value::Num(*lo as f64), Value::Num(*n as f64)])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// One frozen metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter total.
    Counter(u64),
    /// A gauge's last value.
    Gauge(f64),
    /// Histogram statistics.
    Histogram(HistogramSnapshot),
}

/// An ordered map of fully-qualified metric name → frozen value.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// The metrics, keyed by `crate.module.name`.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// Counter total by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(n)) => Some(*n),
            _ => None,
        }
    }

    /// Gauge value by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram statistics by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Whether no metrics were registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// The metrics map as a JSON object (name → typed value), ready to
    /// embed inside a larger document (e.g. a `sbr-bench/v2` record).
    pub fn to_json_value(&self) -> Value {
        Value::Obj(
            self.metrics
                .iter()
                .map(|(name, m)| {
                    let v = match m {
                        MetricValue::Counter(n) => Value::Obj(vec![
                            ("type".into(), Value::Str("counter".into())),
                            ("value".into(), Value::Num(*n as f64)),
                        ]),
                        MetricValue::Gauge(g) => Value::Obj(vec![
                            ("type".into(), Value::Str("gauge".into())),
                            ("value".into(), Value::Num(*g)),
                        ]),
                        MetricValue::Histogram(h) => h.to_json_value(),
                    };
                    (name.clone(), v)
                })
                .collect(),
        )
    }

    /// Serialize as a standalone `sbr-obs/v2` document.
    pub fn to_json(&self) -> String {
        Value::Obj(vec![
            ("schema".into(), Value::Str(SNAPSHOT_SCHEMA.into())),
            ("metrics".into(), self.to_json_value()),
        ])
        .to_string()
    }

    /// Rebuild from the JSON object produced by [`Snapshot::to_json_value`].
    pub fn from_json_value(v: &Value) -> Result<Snapshot, String> {
        let members = v.as_obj().ok_or("metrics must be a JSON object")?;
        let mut metrics = BTreeMap::new();
        for (name, m) in members {
            let ty = m
                .get("type")
                .and_then(Value::as_str)
                .ok_or_else(|| format!("metric '{name}' has no type"))?;
            let parsed = match ty {
                "counter" => MetricValue::Counter(
                    m.get("value")
                        .and_then(Value::as_u64)
                        .ok_or_else(|| format!("counter '{name}' has no value"))?,
                ),
                "gauge" => MetricValue::Gauge(
                    m.get("value")
                        .and_then(Value::as_f64)
                        .ok_or_else(|| format!("gauge '{name}' has no value"))?,
                ),
                "histogram" => {
                    let field = |k: &str| {
                        m.get(k)
                            .and_then(Value::as_u64)
                            .ok_or_else(|| format!("histogram '{name}' has no {k}"))
                    };
                    let buckets = m
                        .get("buckets")
                        .and_then(Value::as_arr)
                        .ok_or_else(|| format!("histogram '{name}' has no buckets"))?
                        .iter()
                        .map(|pair| {
                            let pair = pair.as_arr().filter(|p| p.len() == 2);
                            match pair {
                                Some([lo, n]) => Ok((
                                    lo.as_u64().ok_or("bad bucket bound")?,
                                    n.as_u64().ok_or("bad bucket count")?,
                                )),
                                _ => Err(format!("histogram '{name}' has a bad bucket")),
                            }
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    MetricValue::Histogram(HistogramSnapshot {
                        count: field("count")?,
                        sum: field("sum")?,
                        min: field("min")?,
                        max: field("max")?,
                        buckets,
                    })
                }
                other => return Err(format!("metric '{name}' has unknown type '{other}'")),
            };
            metrics.insert(name.clone(), parsed);
        }
        Ok(Snapshot { metrics })
    }

    /// Parse a standalone document produced by [`Snapshot::to_json`].
    pub fn from_json(text: &str) -> Result<Snapshot, String> {
        let v = json::parse(text)?;
        match v.get("schema").and_then(Value::as_str) {
            Some(SNAPSHOT_SCHEMA) | Some(SNAPSHOT_SCHEMA_V1) => {}
            Some(other) => return Err(format!("unsupported snapshot schema '{other}'")),
            None => return Err("missing snapshot schema".to_string()),
        }
        Self::from_json_value(v.get("metrics").ok_or("missing metrics object")?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MetricsRecorder, Recorder};

    #[test]
    fn snapshot_round_trips_through_json() {
        let rec = MetricsRecorder::new();
        rec.counter("a.b.calls").add(7);
        rec.gauge("a.b.ratio").set(0.75);
        let h = rec.histogram("a.b.ns");
        for v in [0, 3, 900, 1 << 20] {
            h.record(v);
        }
        let snap = rec.snapshot();
        let back = Snapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(snap, back);
        assert_eq!(back.counter("a.b.calls"), Some(7));
        assert_eq!(back.gauge("a.b.ratio"), Some(0.75));
        let hist = back.histogram("a.b.ns").unwrap();
        assert_eq!(hist.count, 4);
        assert_eq!(hist.min, 0);
        assert_eq!(hist.max, 1 << 20);
    }

    #[test]
    fn quantiles_are_within_bucket_error() {
        let rec = MetricsRecorder::new();
        let h = rec.histogram("q.test.ns");
        // 1..=1000: true p50 = 500, p90 = 900, p99 = 990, max = 1000.
        for v in 1..=1000u64 {
            h.record(v);
        }
        let snap = rec.snapshot();
        let hist = snap.histogram("q.test.ns").unwrap();
        for (q, truth) in [(0.50, 500.0), (0.90, 900.0), (0.99, 990.0)] {
            let est = hist.quantile(q) as f64;
            let rel = (est - truth).abs() / truth;
            assert!(rel <= 1.0 / 16.0, "q={q}: est {est} vs {truth} (rel {rel})");
        }
        assert_eq!(hist.quantile(1.0), 1000);
        assert_eq!(hist.quantile(0.0), 1); // clamped to min
        assert!(HistogramSnapshot::default().quantile(0.5) == 0);
    }

    #[test]
    fn quantiles_are_exact_for_small_values() {
        let rec = MetricsRecorder::new();
        let h = rec.histogram("q.small.depth");
        for v in [0u64, 0, 0, 1, 1, 2, 3, 5, 8, 13] {
            h.record(v);
        }
        let snap = rec.snapshot();
        let hist = snap.histogram("q.small.depth").unwrap();
        // Values below 32 land in exact buckets, so quantiles are exact.
        assert_eq!(hist.p50(), 1);
        assert_eq!(hist.p90(), 8);
        assert_eq!(hist.quantile(1.0), 13);
    }

    #[test]
    fn json_carries_precomputed_quantiles() {
        let rec = MetricsRecorder::new();
        let h = rec.histogram("q.json.ns");
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = rec.snapshot();
        let doc = snap.to_json();
        assert!(doc.contains("\"sbr-obs/v2\""), "{doc}");
        assert!(doc.contains("\"p50\""), "{doc}");
        assert!(doc.contains("\"p99\""), "{doc}");
        // Round trip: quantiles are derived, so equality still holds.
        let back = Snapshot::from_json(&doc).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn v1_documents_still_parse() {
        let doc = concat!(
            "{\"schema\": \"sbr-obs/v1\", \"metrics\": {",
            "\"a.b.calls\": {\"type\": \"counter\", \"value\": 3}, ",
            "\"a.b.ns\": {\"type\": \"histogram\", \"count\": 2, \"sum\": 12, ",
            "\"min\": 4, \"max\": 8, \"buckets\": [[4, 1], [8, 1]]}}}"
        );
        let snap = Snapshot::from_json(doc).unwrap();
        assert_eq!(snap.counter("a.b.calls"), Some(3));
        let h = snap.histogram("a.b.ns").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.quantile(1.0), 8);
        assert!(Snapshot::from_json("{\"schema\": \"sbr-obs/v99\", \"metrics\": {}}").is_err());
    }

    #[test]
    fn empty_histogram_reports_zero_min() {
        let rec = MetricsRecorder::new();
        let _ = rec.histogram("never.recorded.ns");
        let snap = rec.snapshot();
        let h = snap.histogram("never.recorded.ns").unwrap();
        assert_eq!((h.count, h.min, h.max, h.mean()), (0, 0, 0, 0.0));
        assert!(h.buckets.is_empty());
    }
}
