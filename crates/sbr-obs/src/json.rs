//! A minimal hand-rolled JSON value, parser and writer.
//!
//! The workspace builds offline with no serialization crates, yet the
//! observability layer needs to *emit* snapshots/trace events and the CLI
//! needs to *read* them back (`sbr report`, `sbr trace`). This module is
//! the shared ~200-line implementation: a recursive-descent parser over
//! the full JSON grammar and a writer with stable key order (objects are
//! ordered vectors).
//!
//! Numbers are `f64`; integers up to 2^53 round-trip exactly, which
//! covers every counter and nanosecond total we produce in practice.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved on parse and write.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `u64` (truncating), if non-negative.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Obj(members) => Some(members),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Num(n) => f.write_str(&format_num(*n)),
            Value::Str(s) => f.write_str(&escape(s)),
            Value::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Format a number the way our writers do: integers without a decimal
/// point, non-finite values as `null` (JSON has no NaN/Infinity).
pub fn format_num(n: f64) -> String {
    if !n.is_finite() {
        "null".to_string()
    // lint:allow(float-eq): fract()==0.0 is the exact integrality test for JSON int formatting
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

/// Quote and escape a string per RFC 8259.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parse a complete JSON document.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_lit(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Value::Null),
            Some(b't') => self.eat_lit("true", Value::Bool(true)),
            Some(b'f') => self.eat_lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect_byte(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // Combine a surrogate pair when present.
                            let c = if (0xD800..0xDC00).contains(&cp)
                                && self.bytes[self.pos..].starts_with(b"\\u")
                            {
                                self.pos += 2;
                                let lo = self.hex4()?;
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.unwrap_or('\u{FFFD}'));
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    // lint:allow(panic-reachability): Some(_) arm — the peeked byte guarantees a char
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|e| e.to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|e| e.to_string())?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{s}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let text = r#"{"schema":"sbr-bench/v2","records":[{"n":20480,"sse":1.5,"ok":true,"note":null,"tags":["a","b\"c"]}]}"#;
        let v = parse(text).unwrap();
        assert_eq!(v.to_string(), text);
        let rec = &v.get("records").unwrap().as_arr().unwrap()[0];
        assert_eq!(rec.get("n").unwrap().as_u64(), Some(20480));
        assert_eq!(rec.get("sse").unwrap().as_f64(), Some(1.5));
        assert_eq!(
            rec.get("tags").unwrap().as_arr().unwrap()[1].as_str(),
            Some("b\"c")
        );
    }

    #[test]
    fn integers_write_without_decimal_point() {
        assert_eq!(format_num(3.0), "3");
        assert_eq!(format_num(-7.0), "-7");
        assert_eq!(format_num(0.25), "0.25");
        assert_eq!(format_num(f64::NAN), "null");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = parse(" { \"a\" : [ 1 , 2.5e1 ] , \"s\" : \"x\\n\\u0041\" } ").unwrap();
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[1].as_f64(),
            Some(25.0)
        );
        assert_eq!(v.get("s").unwrap().as_str(), Some("x\nA"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("{} extra").is_err());
    }
}
