//! Thread-safe metric handles with a single-branch disabled fast path.
//!
//! Every handle is a newtype over `Option<Arc<…atomics…>>`. Handles are
//! handed out by a [`Recorder`](crate::Recorder); cloning a handle clones
//! the `Arc`, so any number of threads can hammer the same metric without
//! locks. `Default` gives the disabled (`None`) form, whose every
//! operation is one `match` on the option — the zero-overhead contract
//! `sbr-core` relies on when no recorder is attached.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets, bounding the relative quantile error
/// at `2^-SUB_BITS` (6.25%).
pub const SUB_BITS: u32 = 4;

/// Sub-buckets per octave (`2^SUB_BITS`).
const SUB_COUNT: u64 = 1 << SUB_BITS;

/// Number of histogram buckets under the log-linear scheme:
///
/// * buckets `0..32` hold their index exactly (zero included);
/// * above that, each power-of-two octave `[2^p, 2^(p+1))` for
///   `p ∈ 5..=63` is split into 16 linear sub-buckets.
///
/// `32 + 59·16 = 976` buckets total (~7.8 KiB of atomics per histogram),
/// giving every bucket a width ≤ 1/16 of its lower bound — the
/// bounded-error property quantile estimates rely on.
pub const NUM_BUCKETS: usize = 32 + 59 * 16;

/// The bucket a value lands in (see [`NUM_BUCKETS`]).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v < 2 * SUB_COUNT {
        // Zero and the sub-32 values are exact: index == value.
        v as usize
    } else {
        let p = 63 - v.leading_zeros(); // v >= 32, so p >= 5
        let shift = p - SUB_BITS;
        2 * SUB_COUNT as usize
            + ((p - SUB_BITS - 1) as usize) * SUB_COUNT as usize
            + ((v >> shift) - SUB_COUNT) as usize
    }
}

/// Smallest value belonging to bucket `i`.
///
/// # Panics
/// If `i >= NUM_BUCKETS`.
#[inline]
pub fn bucket_lower_bound(i: usize) -> u64 {
    assert!(i < NUM_BUCKETS, "bucket index {i} out of range");
    if i < 2 * SUB_COUNT as usize {
        i as u64
    } else {
        let k = i - 2 * SUB_COUNT as usize;
        let p = SUB_BITS + 1 + (k / SUB_COUNT as usize) as u32;
        let off = (k % SUB_COUNT as usize) as u64;
        (SUB_COUNT + off) << (p - SUB_BITS)
    }
}

/// Exclusive upper bound of bucket `i` (the next bucket's lower bound;
/// `u64::MAX` for the top bucket).
///
/// # Panics
/// If `i >= NUM_BUCKETS`.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    if i + 1 < NUM_BUCKETS {
        bucket_lower_bound(i + 1)
    } else {
        u64::MAX
    }
}

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A live counter starting at zero.
    pub fn live() -> Self {
        Counter(Some(Arc::new(AtomicU64::new(0))))
    }

    /// A disabled counter; all operations are a single branch.
    pub fn noop() -> Self {
        Counter(None)
    }

    /// Whether this handle is backed by storage.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value (0 when disabled).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A last-write-wins floating-point gauge (stored as `f64` bits).
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A live gauge starting at 0.0.
    pub fn live() -> Self {
        Gauge(Some(Arc::new(AtomicU64::new(0f64.to_bits()))))
    }

    /// A disabled gauge; all operations are a single branch.
    pub fn noop() -> Self {
        Gauge(None)
    }

    /// Whether this handle is backed by storage.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        if let Some(g) = &self.0 {
            g.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value (0.0 when disabled).
    pub fn get(&self) -> f64 {
        self.0
            .as_ref()
            .map_or(0.0, |g| f64::from_bits(g.load(Ordering::Relaxed)))
    }
}

/// Shared storage behind a live [`Histogram`].
#[derive(Debug)]
pub(crate) struct HistogramCore {
    pub(crate) count: AtomicU64,
    /// Wrapping sum of recorded values (wrap is astronomically unlikely
    /// for the nanosecond/size data we feed it, and harmless if it
    /// happens — only the mean degrades).
    pub(crate) sum: AtomicU64,
    pub(crate) min: AtomicU64,
    pub(crate) max: AtomicU64,
    pub(crate) buckets: [AtomicU64; NUM_BUCKETS],
}

impl HistogramCore {
    fn new() -> Self {
        HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// A log-linear-bucketed histogram of `u64` samples (latencies, sizes)
/// supporting bounded-error quantile estimates (relative error ≤ 1/16).
#[derive(Clone, Debug, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// A live, empty histogram.
    pub fn live() -> Self {
        Histogram(Some(Arc::new(HistogramCore::new())))
    }

    /// A disabled histogram; all operations are a single branch.
    pub fn noop() -> Self {
        Histogram(None)
    }

    /// Whether this handle is backed by storage.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.count.fetch_add(1, Ordering::Relaxed);
            h.sum.fetch_add(v, Ordering::Relaxed);
            h.min.fetch_min(v, Ordering::Relaxed);
            h.max.fetch_max(v, Ordering::Relaxed);
            h.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Number of recorded samples (0 when disabled).
    pub fn count(&self) -> u64 {
        self.0
            .as_ref()
            .map_or(0, |h| h.count.load(Ordering::Relaxed))
    }

    pub(crate) fn core(&self) -> Option<&HistogramCore> {
        self.0.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        // The first 32 values are exact: index == value.
        for v in 0..32u64 {
            assert_eq!(bucket_index(v), v as usize, "exact bucket for {v}");
        }
        // Each octave above that starts a fresh run of 16 sub-buckets.
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(33), 32); // [32, 34) share a bucket
        assert_eq!(bucket_index(34), 33);
        assert_eq!(bucket_index(63), 47);
        assert_eq!(bucket_index(64), 48);
        for p in 5..64u32 {
            let lo = 1u64 << p;
            let idx = 32 + (p as usize - 5) * 16;
            assert_eq!(bucket_index(lo), idx, "2^{p}");
            assert_eq!(bucket_index(lo - 1), idx - 1, "2^{p} - 1");
        }
        // The top bucket absorbs everything from 31·2^59 up.
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(31u64 << 59), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_are_inverse_of_index() {
        assert_eq!(bucket_lower_bound(0), 0);
        for i in 1..NUM_BUCKETS {
            let lo = bucket_lower_bound(i);
            assert_eq!(bucket_index(lo), i);
            assert_eq!(bucket_index(lo - 1), i - 1);
        }
    }

    #[test]
    fn bucket_relative_width_is_bounded() {
        // Every non-exact bucket's width is at most 1/16 of its lower
        // bound: the bounded-error contract behind quantile estimates.
        for i in 32..NUM_BUCKETS {
            let lo = bucket_lower_bound(i);
            let hi = bucket_upper_bound(i);
            let width = hi - lo;
            assert!(
                width as f64 <= lo as f64 / 16.0 + 1.0,
                "bucket {i}: [{lo}, {hi}) too wide"
            );
        }
    }

    #[test]
    fn histogram_tracks_extremes_and_buckets() {
        let h = Histogram::live();
        for v in [0, 1, 1, 7, 1024, u64::MAX] {
            h.record(v);
        }
        let core = h.core().unwrap();
        assert_eq!(core.count.load(Ordering::Relaxed), 6);
        assert_eq!(core.min.load(Ordering::Relaxed), 0);
        assert_eq!(core.max.load(Ordering::Relaxed), u64::MAX);
        assert_eq!(core.buckets[0].load(Ordering::Relaxed), 1); // the zero
        assert_eq!(core.buckets[1].load(Ordering::Relaxed), 2); // the ones
        assert_eq!(core.buckets[7].load(Ordering::Relaxed), 1); // 7, exact
        assert_eq!(core.buckets[bucket_index(1024)].load(Ordering::Relaxed), 1);
        assert_eq!(
            core.buckets[NUM_BUCKETS - 1].load(Ordering::Relaxed),
            1 // u64::MAX
        );
    }

    #[test]
    fn disabled_handles_are_inert() {
        let c = Counter::noop();
        c.inc();
        c.add(10);
        assert_eq!(c.get(), 0);
        assert!(!c.is_enabled());

        let g = Gauge::noop();
        g.set(3.5);
        assert_eq!(g.get(), 0.0);

        let h = Histogram::noop();
        h.record(42);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn clones_share_storage() {
        let c = Counter::live();
        let c2 = c.clone();
        c.inc();
        c2.add(2);
        assert_eq!(c.get(), 3);
        assert_eq!(c2.get(), 3);
    }
}
