//! Zero-dependency observability for the SBR workspace.
//!
//! The layer has three pieces, each usable on its own:
//!
//! * **Handles** ([`Counter`], [`Gauge`], [`Histogram`]) — cheap `Clone`
//!   wrappers around shared atomics. A *disabled* handle (the default) is
//!   an `Option::None` and every operation on it is a single branch, so
//!   instrumented code paths cost nothing when no recorder is attached.
//!   Histograms bucket values log-linearly (976 buckets: values below 32
//!   exact, then 16 linear sub-buckets per power-of-two octave), bounding
//!   quantile estimates (p50/p90/p99) to ≤ 6.25% relative error.
//! * **Timelines** — [`Timeline`] is a bounded ring of per-frame
//!   lifecycle events keyed on [`FrameId`] `(node, epoch, seq)`, so any
//!   v2 frame's full `encoded → … → acked/decoded` history is
//!   reconstructable after a run without touching the wire format.
//! * **Recorders** — the [`Recorder`] trait hands out handles by
//!   fully-qualified name (convention: `crate.module.name`) and receives
//!   structured trace events. [`MetricsRecorder`] interns handles in a
//!   registry and optionally appends events as JSON lines to a writer
//!   (see [`TRACE_ENV`]); [`NoopRecorder`] does nothing.
//! * **Snapshots** — [`Snapshot`] freezes every registered metric into a
//!   `BTreeMap` and serializes it with the hand-rolled [`json`] module
//!   (schema `sbr-obs/v2`; v1 documents still parse), so benchmark output
//!   and CLI reports need no external serialization crates.
//!
//! Timing uses [`Span`], a drop guard that records elapsed nanoseconds
//! into a histogram and emits a trace event; spans nest naturally because
//! each guard is an ordinary stack value.
//!
//! ```
//! use sbr_obs::{MetricsRecorder, Recorder, Span};
//! use std::sync::Arc;
//!
//! let rec = Arc::new(MetricsRecorder::new());
//! let calls = rec.counter("demo.module.calls");
//! let latency = rec.histogram("demo.module.latency_ns");
//! {
//!     let _span = Span::start("demo.module.latency_ns", &latency, None);
//!     calls.inc();
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("demo.module.calls"), Some(1));
//! assert_eq!(snap.histogram("demo.module.latency_ns").unwrap().count, 1);
//! ```

#![warn(missing_docs)]

pub mod json;

mod handles;
mod recorder;
mod snapshot;
mod timeline;

pub use handles::{
    bucket_index, bucket_lower_bound, bucket_upper_bound, Counter, Gauge, Histogram, NUM_BUCKETS,
    SUB_BITS,
};
pub use recorder::{MetricsRecorder, NoopRecorder, Recorder, Span};
pub use snapshot::{HistogramSnapshot, MetricValue, Snapshot, SNAPSHOT_SCHEMA, SNAPSHOT_SCHEMA_V1};
pub use timeline::{
    EventKind, FrameId, Timeline, TimelineEvent, DEFAULT_TIMELINE_CAPACITY, TIMELINE_DROPPED_METRIC,
};

/// Environment variable naming a file to append JSON-line trace events to.
///
/// Honored by [`MetricsRecorder::from_env`]; consumers (the CLI, benches)
/// opt in by constructing their recorder through that helper.
pub const TRACE_ENV: &str = "SBR_TRACE";
