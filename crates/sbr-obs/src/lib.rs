//! Zero-dependency observability for the SBR workspace.
//!
//! The layer has three pieces, each usable on its own:
//!
//! * **Handles** ([`Counter`], [`Gauge`], [`Histogram`]) — cheap `Clone`
//!   wrappers around shared atomics. A *disabled* handle (the default) is
//!   an `Option::None` and every operation on it is a single branch, so
//!   instrumented code paths cost nothing when no recorder is attached.
//!   Histograms bucket values by `log2` (65 buckets: one for zero, one per
//!   power of two), which is plenty for latencies and sizes.
//! * **Recorders** — the [`Recorder`] trait hands out handles by
//!   fully-qualified name (convention: `crate.module.name`) and receives
//!   structured trace events. [`MetricsRecorder`] interns handles in a
//!   registry and optionally appends events as JSON lines to a writer
//!   (see [`TRACE_ENV`]); [`NoopRecorder`] does nothing.
//! * **Snapshots** — [`Snapshot`] freezes every registered metric into a
//!   `BTreeMap` and serializes it with the hand-rolled [`json`] module
//!   (schema `sbr-obs/v1`), so benchmark output and CLI reports need no
//!   external serialization crates.
//!
//! Timing uses [`Span`], a drop guard that records elapsed nanoseconds
//! into a histogram and emits a trace event; spans nest naturally because
//! each guard is an ordinary stack value.
//!
//! ```
//! use sbr_obs::{MetricsRecorder, Recorder, Span};
//! use std::sync::Arc;
//!
//! let rec = Arc::new(MetricsRecorder::new());
//! let calls = rec.counter("demo.module.calls");
//! let latency = rec.histogram("demo.module.latency_ns");
//! {
//!     let _span = Span::start("demo.module.latency_ns", &latency, None);
//!     calls.inc();
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("demo.module.calls"), Some(1));
//! assert_eq!(snap.histogram("demo.module.latency_ns").unwrap().count, 1);
//! ```

#![warn(missing_docs)]

pub mod json;

mod handles;
mod recorder;
mod snapshot;

pub use handles::{bucket_index, bucket_lower_bound, Counter, Gauge, Histogram, NUM_BUCKETS};
pub use recorder::{MetricsRecorder, NoopRecorder, Recorder, Span};
pub use snapshot::{HistogramSnapshot, MetricValue, Snapshot, SNAPSHOT_SCHEMA};

/// Environment variable naming a file to append JSON-line trace events to.
///
/// Honored by [`MetricsRecorder::from_env`]; consumers (the CLI, benches)
/// opt in by constructing their recorder through that helper.
pub const TRACE_ENV: &str = "SBR_TRACE";
