//! Microbenchmarks of the SBR kernels: the regression fits, `BestMap`'s
//! shift scan (direct vs FFT vs parallel), `GetIntervals` and `GetBase`.
//! These back the complexity claims of §4.2–§4.4 (regression linear in the
//! window, BestMap linear in `|X| × len` — or `O((|X|+len) log)` on the
//! FFT path, GetBase `O(n^1.5)`) and calibrate the `Auto` crossover in
//! `sbr_core::xcorr::fft_beats_direct`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sbr_core::best_map::MapContext;
use sbr_core::fit_cache::FitCache;
use sbr_core::get_base::{get_base, get_base_cached, get_base_threaded};
use sbr_core::get_intervals::get_intervals;
use sbr_core::obs::EncodeObs;
use sbr_core::regression::{fit_maxabs, fit_relative, fit_sse};
use sbr_core::xcorr::{sliding_dot_direct, XcorrPlan};
use sbr_core::{ErrorMetric, Interval, MultiSeries, SbrConfig, ShiftStrategy};

fn signal(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64) * 0.17 + seed as f64).sin() * 5.0 + ((i * 7 + 3) % 13) as f64)
        .collect()
}

fn bench_regression(c: &mut Criterion) {
    let mut g = c.benchmark_group("regression");
    for len in [64usize, 256, 1024] {
        let x = signal(len, 1);
        let y = signal(len, 2);
        g.bench_with_input(BenchmarkId::new("sse", len), &len, |b, _| {
            b.iter(|| fit_sse(black_box(&x), black_box(&y)))
        });
        g.bench_with_input(BenchmarkId::new("relative", len), &len, |b, _| {
            b.iter(|| fit_relative(black_box(&x), black_box(&y), 1.0))
        });
        g.bench_with_input(BenchmarkId::new("maxabs", len), &len, |b, _| {
            b.iter(|| fit_maxabs(black_box(&x), black_box(&y)))
        });
    }
    g.finish();
}

fn bench_best_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("best_map");
    g.sample_size(20);
    for x_len in [512usize, 1024, 2048] {
        let x = signal(x_len, 3);
        let y = signal(4096, 4);
        let config = SbrConfig::new(1 << 20, 1 << 20).with_w(64);
        let ctx = MapContext::new(&x, &y, &config, 64);
        g.bench_with_input(BenchmarkId::new("shift_scan", x_len), &x_len, |b, _| {
            b.iter(|| {
                let mut iv = Interval::unfitted(100, 128);
                ctx.best_map(black_box(&mut iv));
                iv.err
            })
        });
    }
    g.finish();
}

/// The raw sliding-dot-product kernel: direct `O(|X| · len)` loop vs the
/// FFT path (base-signal spectrum amortized via a pre-built [`XcorrPlan`],
/// as `MapContext` holds it). The FFT/direct wall-time ratio at each size
/// is what `xcorr::fft_beats_direct`'s cost factor encodes.
fn bench_xcorr(c: &mut Criterion) {
    let mut g = c.benchmark_group("xcorr");
    g.sample_size(20);
    for x_len in [512usize, 1024, 2048] {
        let x = signal(x_len, 3);
        for len in [32usize, 128, 286] {
            let y = signal(len, 4);
            let id = format!("{x_len}x{len}");
            g.bench_with_input(BenchmarkId::new("direct", &id), &len, |b, _| {
                b.iter(|| sliding_dot_direct(black_box(&x), black_box(&y)))
            });
            let plan = XcorrPlan::new(&x);
            g.bench_with_input(BenchmarkId::new("fft", &id), &len, |b, _| {
                b.iter(|| plan.sliding_dot(black_box(&y)))
            });
        }
        g.bench_with_input(BenchmarkId::new("plan_build", x_len), &x_len, |b, _| {
            b.iter(|| XcorrPlan::new(black_box(&x)))
        });
    }
    g.finish();
}

/// Full `BestMap` under each [`ShiftStrategy`], at the Fig. 5 shape
/// (`|X| = 1024`, interval lengths around `W..2W`). `auto` must track the
/// better of the other two.
fn bench_best_map_strategies(c: &mut Criterion) {
    let mut g = c.benchmark_group("best_map_strategy");
    g.sample_size(20);
    let x = signal(1024, 3);
    let y = signal(4096, 4);
    for len in [64usize, 143, 256] {
        for (name, strategy) in [
            ("direct", ShiftStrategy::Direct),
            ("fft", ShiftStrategy::Fft),
            ("auto", ShiftStrategy::Auto),
        ] {
            let config = SbrConfig::new(1 << 20, 1 << 20)
                .with_w(143)
                .with_shift_strategy(strategy);
            let ctx = MapContext::new(&x, &y, &config, 143);
            g.bench_with_input(BenchmarkId::new(name, len), &len, |b, _| {
                b.iter(|| {
                    let mut iv = Interval::unfitted(100, len);
                    ctx.best_map(black_box(&mut iv));
                    iv.err
                })
            });
        }
    }
    g.finish();
}

/// `GetBase`'s K×K benefit matrix, serial vs the scoped-thread fan-out.
/// On a single-core host the threaded numbers mostly measure the fan-out
/// overhead; with real cores they show the speedup.
fn bench_get_base_parallel(c: &mut Criterion) {
    let mut g = c.benchmark_group("get_base_parallel");
    g.sample_size(10);
    let n = 4096usize;
    let rows: Vec<Vec<f64>> = (0..4).map(|s| signal(n / 4, s as u64)).collect();
    let data = MultiSeries::from_rows(&rows).unwrap();
    let w = data.default_w();
    for threads in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| get_base_threaded(black_box(&data), w, 8, ErrorMetric::Sse, t).len())
        });
    }
    g.finish();
}

fn bench_get_intervals(c: &mut Criterion) {
    let mut g = c.benchmark_group("get_intervals");
    g.sample_size(10);
    for n in [2048usize, 8192] {
        let rows: Vec<Vec<f64>> = (0..4).map(|s| signal(n / 4, s as u64)).collect();
        let data = MultiSeries::from_rows(&rows).unwrap();
        let w = data.default_w();
        let x = signal(8 * w, 9);
        let config = SbrConfig::new(n / 10, n / 10);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                get_intervals(black_box(&x), &data, n / 10, w, &config)
                    .unwrap()
                    .total_err
            })
        });
    }
    g.finish();
}

fn bench_get_base(c: &mut Criterion) {
    let mut g = c.benchmark_group("get_base");
    g.sample_size(10);
    for n in [2048usize, 8192] {
        let rows: Vec<Vec<f64>> = (0..4).map(|s| signal(n / 4, s as u64)).collect();
        let data = MultiSeries::from_rows(&rows).unwrap();
        let w = data.default_w();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| get_base(black_box(&data), w, 8, ErrorMetric::Sse).len())
        });
    }
    g.finish();
}

/// The incremental `GetBase`: the legacy fused-fit matrix vs the cached
/// path (factored moments + per-batch memo), and the cached path again
/// with a warm cross-batch carry-over (every window interned by the
/// previous call, so the matrix build fits nothing fresh). The
/// `legacy`/`cached_cold` ratio is the matrix-build speedup fig5's
/// `get_base.speedup` member measures end to end.
fn bench_get_base_cached(c: &mut Criterion) {
    let mut g = c.benchmark_group("get_base_cached");
    g.sample_size(10);
    let obs = EncodeObs::default();
    for n in [2048usize, 8192] {
        let rows: Vec<Vec<f64>> = (0..4).map(|s| signal(n / 4, s as u64)).collect();
        let data = MultiSeries::from_rows(&rows).unwrap();
        let w = data.default_w();
        g.bench_with_input(BenchmarkId::new("legacy", n), &n, |b, _| {
            b.iter(|| get_base(black_box(&data), w, 8, ErrorMetric::Sse).len())
        });
        g.bench_with_input(BenchmarkId::new("cached_cold", n), &n, |b, _| {
            b.iter(|| {
                get_base_cached(black_box(&data), w, 8, ErrorMetric::Sse, 1, &obs, None).len()
            })
        });
        g.bench_with_input(BenchmarkId::new("cached_warm", n), &n, |b, _| {
            let mut cache = FitCache::new();
            get_base_cached(&data, w, 8, ErrorMetric::Sse, 1, &obs, Some(&mut cache));
            b.iter(|| {
                get_base_cached(
                    black_box(&data),
                    w,
                    8,
                    ErrorMetric::Sse,
                    1,
                    &obs,
                    Some(&mut cache),
                )
                .len()
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_regression,
    bench_best_map,
    bench_xcorr,
    bench_best_map_strategies,
    bench_get_intervals,
    bench_get_base,
    bench_get_base_cached,
    bench_get_base_parallel
);
criterion_main!(benches);
