//! Microbenchmarks of the SBR kernels: the regression fits, `BestMap`'s
//! shift scan, `GetIntervals` and `GetBase`. These back the complexity
//! claims of §4.2–§4.4 (regression linear in the window, BestMap linear in
//! `|X| × len`, GetBase `O(n^1.5)`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sbr_core::best_map::MapContext;
use sbr_core::get_base::get_base;
use sbr_core::get_intervals::get_intervals;
use sbr_core::regression::{fit_maxabs, fit_relative, fit_sse};
use sbr_core::{ErrorMetric, Interval, MultiSeries, SbrConfig};

fn signal(n: usize, seed: u64) -> Vec<f64> {
    (0..n)
        .map(|i| ((i as f64) * 0.17 + seed as f64).sin() * 5.0 + ((i * 7 + 3) % 13) as f64)
        .collect()
}

fn bench_regression(c: &mut Criterion) {
    let mut g = c.benchmark_group("regression");
    for len in [64usize, 256, 1024] {
        let x = signal(len, 1);
        let y = signal(len, 2);
        g.bench_with_input(BenchmarkId::new("sse", len), &len, |b, _| {
            b.iter(|| fit_sse(black_box(&x), black_box(&y)))
        });
        g.bench_with_input(BenchmarkId::new("relative", len), &len, |b, _| {
            b.iter(|| fit_relative(black_box(&x), black_box(&y), 1.0))
        });
        g.bench_with_input(BenchmarkId::new("maxabs", len), &len, |b, _| {
            b.iter(|| fit_maxabs(black_box(&x), black_box(&y)))
        });
    }
    g.finish();
}

fn bench_best_map(c: &mut Criterion) {
    let mut g = c.benchmark_group("best_map");
    g.sample_size(20);
    for x_len in [512usize, 1024, 2048] {
        let x = signal(x_len, 3);
        let y = signal(4096, 4);
        let config = SbrConfig::new(1 << 20, 1 << 20).with_w(64);
        let ctx = MapContext::new(&x, &y, &config, 64);
        g.bench_with_input(BenchmarkId::new("shift_scan", x_len), &x_len, |b, _| {
            b.iter(|| {
                let mut iv = Interval::unfitted(100, 128);
                ctx.best_map(black_box(&mut iv));
                iv.err
            })
        });
    }
    g.finish();
}

fn bench_get_intervals(c: &mut Criterion) {
    let mut g = c.benchmark_group("get_intervals");
    g.sample_size(10);
    for n in [2048usize, 8192] {
        let rows: Vec<Vec<f64>> = (0..4).map(|s| signal(n / 4, s as u64)).collect();
        let data = MultiSeries::from_rows(&rows).unwrap();
        let w = data.default_w();
        let x = signal(8 * w, 9);
        let config = SbrConfig::new(n / 10, n / 10);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                get_intervals(black_box(&x), &data, n / 10, w, &config)
                    .unwrap()
                    .total_err
            })
        });
    }
    g.finish();
}

fn bench_get_base(c: &mut Criterion) {
    let mut g = c.benchmark_group("get_base");
    g.sample_size(10);
    for n in [2048usize, 8192] {
        let rows: Vec<Vec<f64>> = (0..4).map(|s| signal(n / 4, s as u64)).collect();
        let data = MultiSeries::from_rows(&rows).unwrap();
        let w = data.default_w();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| get_base(black_box(&data), w, 8, ErrorMetric::Sse).len())
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_regression,
    bench_best_map,
    bench_get_intervals,
    bench_get_base
);
criterion_main!(benches);
