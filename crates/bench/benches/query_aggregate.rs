//! Compressed-domain range-aggregate benchmarks: cold index build + first
//! query, warm plan-cache steady state, and the full-decode
//! [`aggregate_stream`] baseline the `QueryEngine` replaces — the
//! Criterion-grade counterpart of the `query` block in `BENCH_SBR.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use sbr_core::query::aggregate_stream;
use sbr_core::{Aggregate, Decoder, QueryEngine, SbrConfig, SbrEncoder, Transmission};

fn files(n_signals: usize, m: usize) -> Vec<Vec<f64>> {
    (0..n_signals)
        .map(|s| {
            (0..m)
                .map(|i| ((i as f64 * 0.11) + s as f64).sin() * 5.0 + (i % 29) as f64 * 0.3)
                .collect()
        })
        .collect()
}

/// A 16-chunk stream of 4 signals × 256 samples, drifting per chunk so
/// the base signal keeps evolving (realistic update-log shape).
fn stream() -> Vec<Transmission> {
    let (n_signals, m, chunks) = (4usize, 256usize, 16usize);
    let mut enc =
        SbrEncoder::new(n_signals, m, SbrConfig::new(n_signals * m / 5, m)).expect("config");
    (0..chunks)
        .map(|c| {
            let mut rows = files(n_signals, m);
            for row in &mut rows {
                for (i, v) in row.iter_mut().enumerate() {
                    *v += (c as f64 * 0.7) + (i as f64 * 0.01 * c as f64).cos();
                }
            }
            enc.encode(&rows).expect("encode")
        })
        .collect()
}

fn bench_query_aggregate(c: &mut Criterion) {
    let txs = stream();
    let total = 16 * 256;
    let mut g = c.benchmark_group("query_aggregate");
    g.sample_size(20);

    // Cold: build the chunk index from the raw log, then answer one
    // unaligned range (what the first query after recovery costs).
    g.bench_function("cold_index", |b| {
        b.iter(|| {
            let mut qe = QueryEngine::from_transmissions(black_box(&txs)).expect("index");
            qe.query(1, 37, total - 19, Aggregate::Sum).expect("query")
        })
    });

    // Warm: the plan-cache steady state a dashboard replaying canned
    // queries sits in — one hit per iteration.
    let mut warm = QueryEngine::from_transmissions(&txs).expect("index");
    warm.query(1, 37, total - 19, Aggregate::Sum).expect("seed");
    g.bench_function("warm_plan_cache", |b| {
        b.iter(|| {
            warm.query(black_box(1), 37, total - 19, Aggregate::Sum)
                .expect("query")
        })
    });

    // Baseline: the same range answered by replaying the decoder over the
    // whole log (the pre-engine `sbr aggregate` path).
    g.bench_function("full_decode", |b| {
        b.iter(|| {
            let mut decoder = Decoder::new();
            aggregate_stream(&mut decoder, black_box(&txs), 1, 37, total - 19).expect("baseline")
        })
    });
    g.finish();
}

criterion_group!(benches, bench_query_aggregate);
criterion_main!(benches);
