//! Microbenchmarks of the baseline transforms (Haar, DCT, DFT, histograms)
//! at the chunk sizes the evaluation uses — including the non-power-of-two
//! ones that exercise the Bluestein path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sbr_baselines::{dct, fourier, histogram, v_optimal, wavelet, wavelet2d};
use sbr_core::quadratic;
use sbr_core::MultiSeries;

fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| (i as f64 * 0.13).sin() * 4.0 + ((i * 11) % 17) as f64)
        .collect()
}

fn bench_wavelet(c: &mut Criterion) {
    let mut g = c.benchmark_group("haar");
    for n in [2048usize, 2560, 4096] {
        let x = signal(n);
        g.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| wavelet::forward(black_box(&x)))
        });
        let coeffs = wavelet::forward(&x);
        g.bench_with_input(BenchmarkId::new("inverse", n), &n, |b, _| {
            b.iter(|| wavelet::inverse(black_box(&coeffs)))
        });
    }
    g.finish();
}

fn bench_dct(c: &mut Criterion) {
    let mut g = c.benchmark_group("dct");
    g.sample_size(20);
    for n in [2048usize, 2560, 4096] {
        let x = signal(n);
        g.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| dct::forward(black_box(&x)))
        });
    }
    g.finish();
}

fn bench_fourier(c: &mut Criterion) {
    let mut g = c.benchmark_group("fourier");
    g.sample_size(20);
    for n in [2048usize, 2560] {
        let x = signal(n);
        g.bench_with_input(BenchmarkId::new("approximate_64", n), &n, |b, _| {
            b.iter(|| fourier::approximate(black_box(&x), 64))
        });
    }
    g.finish();
}

fn bench_histogram(c: &mut Criterion) {
    let mut g = c.benchmark_group("histogram");
    for n in [2048usize, 8192] {
        let x = signal(n);
        for policy in [
            histogram::Bucketing::EquiDepth,
            histogram::Bucketing::EquiWidth,
            histogram::Bucketing::MaxDiff,
        ] {
            g.bench_with_input(BenchmarkId::new(format!("{policy:?}"), n), &n, |b, _| {
                b.iter(|| histogram::build(black_box(&x), 64, policy))
            });
        }
    }
    g.finish();
}

fn bench_voptimal(c: &mut Criterion) {
    let mut g = c.benchmark_group("v_optimal");
    g.sample_size(10);
    for n in [512usize, 2048] {
        let x = signal(n);
        g.bench_with_input(BenchmarkId::new("greedy_64", n), &n, |b, _| {
            b.iter(|| v_optimal::build_greedy(black_box(&x), 64).len())
        });
    }
    // The exact DP only at a size it can afford.
    let x = signal(256);
    g.bench_function("exact_16_n256", |b| {
        b.iter(|| v_optimal::build_exact(black_box(&x), 16).len())
    });
    g.finish();
}

fn bench_wavelet2d(c: &mut Criterion) {
    let mut g = c.benchmark_group("haar2d");
    for (rows, cols) in [(6usize, 512usize), (10, 1024)] {
        let data =
            MultiSeries::from_rows(&(0..rows).map(|_| signal(cols)).collect::<Vec<_>>()).unwrap();
        let m = wavelet2d::Matrix::from_series(&data);
        g.bench_with_input(
            BenchmarkId::new("forward", rows * cols),
            &(rows, cols),
            |b, _| b.iter(|| wavelet2d::forward(black_box(&m))),
        );
    }
    g.finish();
}

fn bench_quadratic(c: &mut Criterion) {
    let mut g = c.benchmark_group("quadratic_fit");
    for n in [64usize, 512] {
        let x = signal(n);
        let y = signal(n + 1)[1..].to_vec();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| quadratic::fit_quadratic(black_box(&x), black_box(&y)).err)
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_wavelet,
    bench_dct,
    bench_fourier,
    bench_histogram,
    bench_voptimal,
    bench_wavelet2d,
    bench_quadratic
);
criterion_main!(benches);
