//! End-to-end benchmarks: one full SBR transmission (GetBase + Search +
//! GetIntervals + encode) at growing batch sizes and budgets — the
//! Criterion-grade counterpart of Figure 5 — plus the wire codec and the
//! decoder.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use sbr_core::query::ChunkView;
use sbr_core::{codec, Decoder, SbrConfig, SbrEncoder};

fn files(n_signals: usize, m: usize) -> Vec<Vec<f64>> {
    (0..n_signals)
        .map(|s| {
            (0..m)
                .map(|i| ((i as f64 * 0.11) + s as f64).sin() * 5.0 + (i % 29) as f64 * 0.3)
                .collect()
        })
        .collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut g = c.benchmark_group("sbr_encode");
    g.sample_size(10);
    for n in [2048usize, 5120, 10240] {
        let rows = files(10, n / 10);
        g.bench_with_input(BenchmarkId::new("ratio_10", n), &n, |b, _| {
            b.iter(|| {
                let mut enc = SbrEncoder::new(10, n / 10, SbrConfig::new(n / 10, 1024)).unwrap();
                enc.encode(black_box(&rows)).unwrap().cost()
            })
        });
    }
    g.finish();
}

fn bench_encode_frozen_base(c: &mut Criterion) {
    // The §4.4 shortcut: GetIntervals only. Should be dramatically cheaper
    // than the full pipeline above.
    let mut g = c.benchmark_group("sbr_encode_frozen");
    g.sample_size(10);
    for n in [2048usize, 5120, 10240] {
        let rows = files(10, n / 10);
        let mut enc =
            SbrEncoder::new(10, n / 10, SbrConfig::new(n / 10, 1024).frozen_base()).unwrap();
        g.bench_with_input(BenchmarkId::new("ratio_10", n), &n, |b, _| {
            b.iter(|| enc.encode(black_box(&rows)).unwrap().cost())
        });
    }
    g.finish();
}

fn bench_codec_and_decode(c: &mut Criterion) {
    let rows = files(10, 512);
    let mut enc = SbrEncoder::new(10, 512, SbrConfig::new(512, 1024)).unwrap();
    let tx = enc.encode(&rows).unwrap();
    let frame = codec::encode(&tx);

    let mut g = c.benchmark_group("wire");
    g.bench_function("codec_encode", |b| {
        b.iter(|| codec::encode(black_box(&tx)).len())
    });
    g.bench_function("codec_decode", |b| {
        b.iter(|| codec::decode(&mut black_box(frame.clone())).unwrap().seq)
    });
    g.bench_function("decoder_reconstruct", |b| {
        b.iter(|| {
            let mut d = Decoder::new();
            d.decode(black_box(&tx)).unwrap().len()
        })
    });
    g.finish();
}

fn bench_obs_overhead(c: &mut Criterion) {
    // The sbr-obs contract: with no recorder attached every handle is one
    // branch and no span reads the clock, so the default (noop) encode
    // must sit within noise of the pre-instrumentation pipeline. Compare
    // the four operating points side by side — noop, live metrics, live
    // metrics + discarding trace sink, live metrics + frame-lifecycle
    // timeline — on an identical workload.
    use sbr_obs::{MetricsRecorder, Timeline, DEFAULT_TIMELINE_CAPACITY};
    use std::sync::Arc;

    let n = 5120usize;
    let rows = files(10, n / 10);
    let mut g = c.benchmark_group("obs_overhead");
    g.sample_size(10);
    g.bench_function("noop", |b| {
        b.iter(|| {
            let mut enc = SbrEncoder::new(10, n / 10, SbrConfig::new(n / 10, 1024)).unwrap();
            enc.encode(black_box(&rows)).unwrap().cost()
        })
    });
    g.bench_function("live_metrics", |b| {
        b.iter(|| {
            let rec = Arc::new(MetricsRecorder::new());
            let config = SbrConfig::new(n / 10, 1024).with_recorder(rec);
            let mut enc = SbrEncoder::new(10, n / 10, config).unwrap();
            enc.encode(black_box(&rows)).unwrap().cost()
        })
    });
    g.bench_function("live_metrics_and_trace", |b| {
        b.iter(|| {
            let rec = Arc::new(MetricsRecorder::with_trace_writer(
                Box::new(std::io::sink()),
            ));
            let config = SbrConfig::new(n / 10, 1024).with_recorder(rec);
            let mut enc = SbrEncoder::new(10, n / 10, config).unwrap();
            enc.encode(black_box(&rows)).unwrap().cost()
        })
    });
    g.bench_function("live_metrics_and_timeline", |b| {
        b.iter(|| {
            let rec = Arc::new(MetricsRecorder::new());
            let timeline = Timeline::with_recorder(rec.as_ref(), DEFAULT_TIMELINE_CAPACITY);
            let config = SbrConfig::new(n / 10, 1024)
                .with_recorder(rec)
                .with_timeline(timeline);
            let mut enc = SbrEncoder::new(10, n / 10, config).unwrap();
            enc.encode(black_box(&rows)).unwrap().cost()
        })
    });
    g.finish();
}

fn bench_search_probe(c: &mut Criterion) {
    // PR 3 tentpole: `Search` probes share base-prefix fit work through the
    // transmission-scoped probe cache instead of re-running a full
    // `GetIntervals` fit per insertion-count probe. Full encodes with the
    // cache on vs off on an identical workload; Search dominates at these
    // shapes, so the gap is the cached-vs-legacy probe cost.
    let mut g = c.benchmark_group("search_probe");
    g.sample_size(10);
    for n in [2048usize, 5120] {
        let rows = files(10, n / 10);
        g.bench_with_input(BenchmarkId::new("cached", n), &n, |b, _| {
            b.iter(|| {
                let mut enc = SbrEncoder::new(10, n / 10, SbrConfig::new(n / 10, 1024)).unwrap();
                enc.encode(black_box(&rows)).unwrap().cost()
            })
        });
        g.bench_with_input(BenchmarkId::new("legacy", n), &n, |b, _| {
            b.iter(|| {
                let config = SbrConfig::new(n / 10, 1024).without_probe_cache();
                let mut enc = SbrEncoder::new(10, n / 10, config).unwrap();
                enc.encode(black_box(&rows)).unwrap().cost()
            })
        });
    }
    g.finish();
}

fn bench_query(c: &mut Criterion) {
    // Aggregate directly on the compressed records vs reconstruct + scan.
    let rows = files(10, 1024);
    let n = 10 * 1024;
    let mut enc = SbrEncoder::new(10, 1024, SbrConfig::new(n / 10, 1024)).unwrap();
    let tx = enc.encode(&rows).unwrap();
    let mut base = Vec::new();
    for u in &tx.base_updates {
        base.extend_from_slice(&u.values);
    }
    let view = ChunkView::new(&tx.intervals, &base, n).unwrap();
    let mut g = c.benchmark_group("range_sum_10240");
    g.bench_function("chunk_view", |b| {
        b.iter(|| view.range_sum(black_box(100), black_box(9000)).unwrap())
    });
    g.bench_function("reconstruct_scan", |b| {
        b.iter(|| {
            let rec = sbr_core::get_intervals::reconstruct_flat(black_box(&base), &tx.intervals, n)
                .unwrap();
            rec[100..9000].iter().sum::<f64>()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_encode,
    bench_encode_frozen_base,
    bench_codec_and_decode,
    bench_obs_overhead,
    bench_search_probe,
    bench_query
);
criterion_main!(benches);
