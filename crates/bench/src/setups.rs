//! Experiment setups: the dataset shapes and budgets of §5, plus the
//! `--quick` downscaling used while iterating.

use sbr_datasets::Dataset;

/// One dataset prepared for streaming: its chunk files plus the paper's
/// buffer sizes for it.
#[derive(Debug, Clone)]
pub struct Setup {
    /// Dataset name.
    pub name: &'static str,
    /// `files[t][signal][sample]`.
    pub files: Vec<Vec<Vec<f64>>>,
    /// Base-signal buffer size `M_base` (values), per §5.1.1.
    pub m_base: usize,
}

impl Setup {
    /// Values per transmission batch (`n = N × M`).
    pub fn n(&self) -> usize {
        self.files[0].len() * self.files[0][0].len()
    }
}

fn chunked(d: &Dataset, file_len: usize, n_files: usize) -> Vec<Vec<Vec<f64>>> {
    let mut files = d.chunk(file_len);
    files.truncate(n_files);
    assert_eq!(
        files.len(),
        n_files,
        "dataset too short for requested files"
    );
    files
}

/// §5.1 Stock setup: 10 tickers × 2,048 values per file × 10 files,
/// `M_base` 2,048. `quick` divides the file length by 4.
pub fn stock_setup(quick: bool) -> Setup {
    let file_len = if quick { 512 } else { 2048 };
    let d = sbr_datasets::stock(42, 10, file_len * 10);
    Setup {
        name: "Stock",
        files: chunked(&d, file_len, 10),
        m_base: if quick { 512 } else { 2048 },
    }
}

/// §5.1 Weather setup: 6 quantities × 4,096 values per file × 10 files,
/// `M_base` 3,456.
pub fn weather_setup(quick: bool) -> Setup {
    let file_len = if quick { 1024 } else { 4096 };
    let d = sbr_datasets::weather(42, file_len * 10);
    Setup {
        name: "Weather",
        files: chunked(&d, file_len, 10),
        m_base: if quick { 864 } else { 3456 },
    }
}

/// §5.1 Phone setup: 15 states × 2,560 values per file × 10 files,
/// `M_base` 2,048.
pub fn phone_setup(quick: bool) -> Setup {
    let file_len = if quick { 640 } else { 2560 };
    let d = sbr_datasets::phone(42, file_len * 10, 256);
    Setup {
        name: "Phone",
        files: chunked(&d, file_len, 10),
        m_base: if quick { 512 } else { 2048 },
    }
}

/// §5.1.2 Mixed setup: 9 series × 2,048 values per file × 10 files,
/// `M_base` 2,048.
pub fn mixed_setup(quick: bool) -> Setup {
    let file_len = if quick { 512 } else { 2048 };
    let d = sbr_datasets::mixed(42, file_len * 10);
    Setup {
        name: "Mixed",
        files: chunked(&d, file_len, 10),
        m_base: if quick { 512 } else { 2048 },
    }
}

/// §5.3 equal-size setups for Figure 6 / Table 6: stock 3,072, phone
/// 2,048, weather 5,120 values per file (all `n = 30,720`), with
/// `TotalBand = 5,012` (≈16%).
pub fn fig6_setups(quick: bool) -> (Vec<Setup>, usize) {
    let div = if quick { 4 } else { 1 };
    let stock_len = 3072 / div;
    let phone_len = 2048 / div;
    let weather_len = 5120 / div;
    let total_band = 5012 / div;
    let stock = sbr_datasets::stock(42, 10, stock_len * 10);
    let phone = sbr_datasets::phone(42, phone_len * 10, 256);
    let weather = sbr_datasets::weather(42, weather_len * 10);
    let m_base = 2048 / div;
    (
        vec![
            Setup {
                name: "Weather",
                files: chunked(&weather, weather_len, 10),
                m_base,
            },
            Setup {
                name: "Phone",
                files: chunked(&phone, phone_len, 10),
                m_base,
            },
            Setup {
                name: "Stock",
                files: chunked(&stock, stock_len, 10),
                m_base,
            },
        ],
        total_band,
    )
}

/// The compression-ratio sweep of §5.1.1.
pub const RATIOS: [f64; 6] = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setups_have_paper_shapes() {
        let s = stock_setup(false);
        assert_eq!(s.files.len(), 10);
        assert_eq!(s.files[0].len(), 10);
        assert_eq!(s.files[0][0].len(), 2048);
        assert_eq!(s.n(), 20480);
        let w = weather_setup(false);
        assert_eq!(w.n(), 6 * 4096);
        let p = phone_setup(false);
        assert_eq!(p.n(), 15 * 2560);
        let m = mixed_setup(false);
        assert_eq!(m.n(), 9 * 2048);
    }

    #[test]
    fn fig6_setups_share_batch_size() {
        let (setups, band) = fig6_setups(false);
        assert_eq!(band, 5012);
        for s in &setups {
            assert_eq!(s.n(), 30720, "{}", s.name);
        }
    }

    #[test]
    fn quick_mode_shrinks() {
        assert!(stock_setup(true).n() < stock_setup(false).n());
    }
}
