//! Network-lifetime experiment (beyond the paper's tables, but its §3.1
//! motivation): first-node-death lifetime of a 20-sensor multi-hop network
//! under raw forwarding, per-window aggregation, and SBR at several
//! compression ratios, using the MICA-mote energy constants and broadcast
//! overhearing.
//!
//! Expected shape: lifetime scales roughly with the inverse of the data
//! volume each node relays, so SBR at ratio r buys ≈ 1/r the raw lifetime
//! while keeping full-resolution history (aggregation matches the energy
//! but destroys the detail — its SSE column is the price).
//!
//! Run with `--quick` for a smaller network.

use sbr_bench::quick_mode;
use sbr_core::SbrConfig;
use sensor_net::{Battery, EnergyModel, Network, Strategy, Topology};

fn main() {
    let quick = quick_mode();
    let n_nodes = if quick { 9 } else { 21 };
    let n_signals = 3;
    let file_len = if quick { 256 } else { 512 };
    let batches = 4;

    let feeds: Vec<Vec<Vec<f64>>> = (0..n_nodes - 1)
        .map(|i| {
            let d = sbr_datasets::weather(300 + i as u64, file_len * batches);
            d.signals[..n_signals].to_vec()
        })
        .collect();

    let battery = Battery { capacity: 2e12 };
    println!(
        "=== Network lifetime (first node death, {} sensors, multi-hop) ===",
        n_nodes - 1
    );
    println!(
        "{:<18} {:>12} {:>14} {:>16} {:>12}",
        "strategy", "values", "energy", "lifetime(x raw)", "sse"
    );

    let mut raw_lifetime = None;
    let mut run = |label: String, strategy: Strategy| {
        let topo = Topology::random(n_nodes, 10.0, 2.5, 9);
        let mut net = Network::new(topo, EnergyModel::default());
        let report = net.simulate(&feeds, file_len, &strategy).expect("simulate");
        let life = battery.network_lifetime(&report.ledgers);
        let base = *raw_lifetime.get_or_insert(life);
        println!(
            "{label:<18} {:>12} {:>14.3e} {:>16.2} {:>12.1}",
            report.values_sent,
            report.total_energy(),
            life / base,
            report.sse
        );
    };

    run("raw".into(), Strategy::Raw);
    run("aggregate/32".into(), Strategy::Aggregate { window: 32 });
    for ratio in [0.05f64, 0.10, 0.20, 0.30] {
        let band = (n_signals as f64 * file_len as f64 * ratio) as usize;
        run(
            format!("sbr {:>3.0}%", ratio * 100.0),
            Strategy::Sbr(SbrConfig::new(band, 256)),
        );
    }
}
