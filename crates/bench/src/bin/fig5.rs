//! Figure 5: average per-transmission SBR running time vs. `TotalBand`
//! (compression ratios 5–30 %), for n ∈ {5,120, 10,240, 20,480} values
//! (10 stocks, M varied) with a 1,024-value base signal.
//!
//! The reproduction target is the *shape*: running time linear in the
//! transmitted-data size, larger n strictly slower. Absolute seconds
//! depend on the host (the paper used a 300 MHz Irix box).
//!
//! Run with `--quick` to measure only two ratios.
//!
//! Besides the human-readable table, every measured configuration is
//! written to `BENCH_SBR.json` (schema `sbr-bench/v1`, see the README) so
//! CI and regression tooling can diff encode times without screen-scraping.

use sbr_bench::{quick_mode, row, run_sbr_stream, BenchRecord, RATIOS};
use sbr_core::SbrConfig;

fn main() {
    let quick = quick_mode();
    let ratios: &[f64] = if quick { &RATIOS[..2] } else { &RATIOS };
    println!("=== Figure 5 — avg per-transmission time (seconds) vs TotalBand ===");
    println!(
        "{}",
        row(
            "ratio",
            [5120usize, 10240, 20480].map(|n| format!("n={n}")).as_ref()
        )
    );
    // One row per ratio, one column per n.
    let sizes = [512usize, 1024, 2048]; // M per stock; N = 10
    let mut columns: Vec<Vec<f64>> = Vec::new();
    let mut records = Vec::new();
    for &m in &sizes {
        let d = sbr_datasets::stock(42, 10, m * 10);
        let files = d.chunk(m);
        let mut col = Vec::new();
        for &ratio in ratios {
            let band = (10 * m) as f64 * ratio;
            let stream = run_sbr_stream(&files, SbrConfig::new(band as usize, 1024));
            col.push(stream.avg_encode_time().as_secs_f64());
            records.push(BenchRecord::from_stream(
                "fig5",
                &[
                    ("n", (10 * m) as f64),
                    ("total_band", band.floor()),
                    ("ratio", ratio),
                ],
                &stream,
            ));
        }
        columns.push(col);
    }
    for (ri, &ratio) in ratios.iter().enumerate() {
        let cells: Vec<String> = columns.iter().map(|c| format!("{:.3}", c[ri])).collect();
        println!("{}", row(&format!("{:.0}%", ratio * 100.0), &cells));
    }
    sbr_bench::write_bench_json("BENCH_SBR.json", &records).expect("write BENCH_SBR.json");
}
