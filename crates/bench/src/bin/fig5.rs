//! Figure 5: average per-transmission SBR running time vs. `TotalBand`
//! (compression ratios 5–30 %), for n ∈ {5,120, 10,240, 20,480} values
//! (10 stocks, M varied) with a 1,024-value base signal.
//!
//! The reproduction target is the *shape*: running time linear in the
//! transmitted-data size, larger n strictly slower. Absolute seconds
//! depend on the host (the paper used a 300 MHz Irix box).
//!
//! Run with `--quick` to measure only two ratios.
//!
//! Besides the human-readable table, every measured configuration is
//! written to `BENCH_SBR.json` (schema `sbr-bench/v3`, see the README).
//! Each record embeds the run's `sbr-obs` metrics snapshot — per-phase
//! times, shift-strategy decision counts, base-signal churn — plus a
//! `search` block (probe count, probe-cache hits/misses, search-phase
//! wall time, and the measured speedup over a probe-cache-off control
//! run of the same configuration). One extra `network_sim` record
//! carries per-node radio counters from a small sensor-network run, so
//! regression tooling can diff *why* a configuration got slower, not
//! just that it did.

use std::sync::Arc;
use std::time::Instant;

use sbr_bench::{
    quick_mode, row, run_sbr_stream, BenchRecord, GetBaseStats, QueryStats, SearchStats,
    StorageStats, RATIOS,
};
use sbr_core::{
    codec, query::aggregate_stream, Aggregate, Decoder, QueryEngine, QueryObs, SbrConfig,
    SbrEncoder,
};
use sbr_obs::{MetricsRecorder, Recorder as _};
use sensor_net::{
    storage, BaseStation, EnergyModel, FaultPlan, LossyLink, Network, Strategy, Topology,
};

/// One small SBR dissemination run over a line topology, instrumented end
/// to end; returns the record carrying per-node tx/rx counters. The run
/// uses the loss-tolerant ARQ strategy under per-hop loss and a seeded
/// end-to-end fault schedule, so the record also carries a `recovery`
/// block and the `sensor_net.recovery.*` counters land in its snapshot.
fn network_sim_record(quick: bool) -> BenchRecord {
    let nodes = 5usize; // base + 4 sensors
    let n_signals = 2;
    let m = if quick { 64 } else { 128 };
    let len = 4 * m;
    let feeds: Vec<Vec<Vec<f64>>> = (0..nodes - 1)
        .map(|node| {
            (0..n_signals)
                .map(|s| {
                    (0..len)
                        .map(|t| ((t as f64 * 0.21) + (node * 3 + s) as f64).sin() * 8.0)
                        .collect()
                })
                .collect()
        })
        .collect();
    let rec = Arc::new(MetricsRecorder::new());
    let mut net = Network::new(Topology::line(nodes, 1.0), EnergyModel::default());
    net.set_recorder(rec.clone());
    net.set_link(LossyLink::new(0.1, 12, 7));
    net.set_fault_plan(FaultPlan::new(42).with_drop(0.2).with_dup(0.05));
    let report = net
        .simulate(
            &feeds,
            m,
            &Strategy::SbrArq(SbrConfig::new(2 * m / 5, m / 2)),
        )
        .expect("network_sim run");
    let recovery = report.recovery.expect("ARQ runs report recovery stats");
    BenchRecord {
        experiment: "network_sim".to_string(),
        params: vec![
            ("nodes".to_string(), nodes as f64),
            ("values_sent".to_string(), report.values_sent as f64),
            ("raw_values".to_string(), report.raw_values as f64),
            ("loss".to_string(), 0.1),
            ("drop".to_string(), 0.2),
        ],
        avg_encode_secs: 0.0,
        avg_sse: report.sse,
        total_rel: 0.0,
        transmissions: 0,
        inserted: Vec::new(),
        metrics: None,
        search: None,
        get_base: None,
        recovery: None,
        query: None,
        storage: None,
    }
    .with_metrics(rec.snapshot())
    .with_recovery(recovery)
}

/// Millions of range aggregates against the compressed-domain
/// [`QueryEngine`] vs. a full-decode [`aggregate_stream`] baseline on a
/// subsample of the same deterministic workload; returns the record
/// carrying the v3 `query` block (plan-cache hit counts, fold counters,
/// and the per-query decode-over-compressed `speedup`).
fn query_sweep_record(quick: bool) -> BenchRecord {
    let n_signals = 4usize;
    let m = 256usize;
    // The compressed sweep is cheap enough to keep at full size even in
    // quick mode (the v3 acceptance gate is the 1e6-query speedup);
    // quick only trims the log length and the slow decode control.
    let chunks = if quick { 16 } else { 64 };
    let sweep: u64 = 1_000_000;
    let decode_queries: u64 = if quick { 400 } else { 2_000 };
    let d = sbr_datasets::stock(7, n_signals, m * chunks);
    let files = d.chunk(m);
    let band = (n_signals * m) / 5;
    let config = SbrConfig::new(band, m);
    let mut encoder = SbrEncoder::new(n_signals, m, config).expect("query sweep config");
    let txs: Vec<_> = files
        .iter()
        .map(|rows| encoder.encode(rows).expect("query sweep encode"))
        .collect();

    let rec = Arc::new(MetricsRecorder::new());
    let mut engine = QueryEngine::from_transmissions(&txs).expect("query sweep index");
    engine.set_obs(QueryObs::new(rec.as_ref()));

    // A fixed pool of distinct plans (below the engine's cache cap) drawn
    // by a seeded LCG, then a long sweep that revisits the pool: the
    // steady state the record describes is plan-cache hits, exactly the
    // regime a monitoring dashboard replaying canned queries sits in.
    const POOL: usize = 2_048;
    let total = m * chunks;
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut lcg = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 16
    };
    let aggs = [
        Aggregate::Sum,
        Aggregate::Avg,
        Aggregate::Min,
        Aggregate::Max,
    ];
    let pool: Vec<(usize, usize, usize, Aggregate)> = (0..POOL)
        .map(|k| {
            let signal = lcg() as usize % n_signals;
            let t0 = lcg() as usize % (total - 1);
            let span = (total - t0 - 1).max(1);
            let t1 = (t0 + 1 + lcg() as usize % span).min(total);
            (signal, t0, t1, aggs[k % aggs.len()])
        })
        .collect();

    for _ in 0..sweep {
        let &(signal, t0, t1, agg) = &pool[lcg() as usize % POOL];
        let _ = engine.query(signal, t0, t1, agg).expect("compressed query");
    }

    // Full-decode control: replay the *same* workload prefix, each query
    // re-running the decoder from the head of the log (what answering
    // without the index costs). Far too slow for the full sweep — hence
    // the subsample, normalized per query by `QueryStats::speedup`.
    let mut state2 = 0x2545_f491_4f6c_dd1du64;
    for _ in 0..3 * POOL as u64 {
        // Advance past the pool-construction draws.
        state2 = state2
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
    }
    let mut lcg2 = move || {
        state2 = state2
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state2 >> 16
    };
    let started = Instant::now();
    for _ in 0..decode_queries {
        let &(signal, t0, t1, _) = &pool[lcg2() as usize % POOL];
        let mut decoder = Decoder::new();
        let _ = aggregate_stream(&mut decoder, &txs, signal, t0, t1).expect("decode baseline");
    }
    let decode_wall = started.elapsed().as_secs_f64();

    let snapshot = rec.snapshot();
    let query =
        QueryStats::from_snapshot(&snapshot).with_decode_baseline(decode_queries, decode_wall);
    let speedup = query.speedup().unwrap_or(0.0);
    println!(
        "query sweep: {sweep} compressed queries over {chunks} chunks \
         ({:.2} s), {decode_queries} decode-baseline queries ({decode_wall:.2} s), \
         {speedup:.0}x per query",
        query.wall_secs
    );
    BenchRecord {
        experiment: "query_sweep".to_string(),
        params: vec![
            ("n_signals".to_string(), n_signals as f64),
            ("samples_per_signal".to_string(), m as f64),
            ("chunks".to_string(), chunks as f64),
            ("plan_pool".to_string(), POOL as f64),
        ],
        avg_encode_secs: 0.0,
        avg_sse: 0.0,
        total_rel: 0.0,
        transmissions: txs.len(),
        inserted: Vec::new(),
        metrics: None,
        search: None,
        get_base: None,
        recovery: None,
        query: None,
        storage: None,
    }
    .with_metrics(snapshot)
    .with_query(query)
}

/// Segmented-store recovery sweep: persist histories an order of
/// magnitude apart into checkpointed segmented stores, then measure what
/// a station restart costs. One record per history length, each carrying
/// the v3 `storage` block. The headline shape: `replayed_records` and
/// `wall_secs` stay flat while `records` grows 10x–100x, because a
/// checkpointed load replays only the active tail; the
/// `full_replay_wall_secs` control (hydrating the whole history) is what
/// recovery would cost without checkpoints.
fn storage_recovery_records(quick: bool) -> Vec<BenchRecord> {
    let n_signals = 2usize;
    let m = 64usize;
    let histories: &[usize] = if quick { &[24, 240] } else { &[24, 240, 2400] };
    let max_h = *histories.last().expect("non-empty sweep");
    // One encoded stream, reused as prefixes: the continuity chain only
    // constrains what came before, so history `h` ingests frames[..h].
    let d = sbr_datasets::stock(11, n_signals, m * max_h);
    let files = d.chunk(m);
    let band = (n_signals * m) / 4;
    let mut encoder =
        SbrEncoder::new(n_signals, m, SbrConfig::new(band, m)).expect("storage sweep config");
    let frames: Vec<_> = files
        .iter()
        .map(|rows| codec::encode(&encoder.encode(rows).expect("storage sweep encode")))
        .collect();

    // ~2 KiB segments: long histories seal many segments and write many
    // checkpoints, so the sweep exercises the checkpoint ladder rather
    // than a single open file.
    const SEGMENT_BYTES: u64 = 2 * 1024;
    let root = std::env::temp_dir().join(format!("sbr-bench-storage-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut records = Vec::new();
    for &h in histories {
        let dir = root.join(format!("h{h}"));
        {
            let station = BaseStation::with_persistence(&dir).with_segment_size(SEGMENT_BYTES);
            for f in &frames[..h] {
                station.receive(1, f.clone()).expect("storage sweep ingest");
            }
        }
        let report = storage::verify(&dir, 1).expect("persisted store verifies");
        // Checkpointed load: directory scan + active-tail replay only.
        let rec = Arc::new(MetricsRecorder::new());
        let started = Instant::now();
        let station =
            BaseStation::load_with_recorder(&dir, rec.as_ref()).expect("checkpointed load");
        let wall = started.elapsed().as_secs_f64();
        let replayed = rec
            .snapshot()
            .counter("sensor_net.storage.segments.replayed_records")
            .unwrap_or(0);
        // Full-replay control: hydrating the cold prefix re-decodes the
        // whole history.
        let started = Instant::now();
        let hydrated = station.frames(1).expect("full hydration");
        let full_wall = started.elapsed().as_secs_f64();
        assert_eq!(hydrated.len(), h, "hydration must recover every frame");
        let stats = StorageStats {
            records: report.records,
            segments_sealed: u64::from(report.segments - u32::from(report.active)),
            checkpoints: u64::from(report.checkpoints),
            replayed_records: replayed,
            wall_secs: wall,
            full_replay_wall_secs: Some(full_wall),
        };
        println!(
            "storage recovery: history {h} frames → load {:.2} ms replaying {replayed} \
             record(s) ({} sealed segment(s), {} checkpoint(s)); full replay {:.2} ms",
            wall * 1e3,
            stats.segments_sealed,
            stats.checkpoints,
            full_wall * 1e3,
        );
        records.push(
            BenchRecord {
                experiment: "storage_recovery".to_string(),
                params: vec![
                    ("history".to_string(), h as f64),
                    ("segment_bytes".to_string(), SEGMENT_BYTES as f64),
                    ("n_signals".to_string(), n_signals as f64),
                    ("samples_per_signal".to_string(), m as f64),
                ],
                avg_encode_secs: 0.0,
                avg_sse: 0.0,
                total_rel: 0.0,
                transmissions: h,
                inserted: Vec::new(),
                metrics: None,
                search: None,
                get_base: None,
                recovery: None,
                query: None,
                storage: None,
            }
            .with_storage(stats),
        );
    }
    let _ = std::fs::remove_dir_all(&root);
    records
}

fn main() {
    let quick = quick_mode();
    // Quick mode samples one light and one heavy ratio: the heavy cell is
    // where Search dominates, so the smoke still exercises (and the v3
    // `speedup` member still demonstrates) the probe cache under load.
    let quick_ratios = [RATIOS[1], RATIOS[5]];
    let ratios: &[f64] = if quick { &quick_ratios } else { &RATIOS };
    println!("=== Figure 5 — avg per-transmission time (seconds) vs TotalBand ===");
    println!(
        "{}",
        row(
            "ratio",
            [5120usize, 10240, 20480].map(|n| format!("n={n}")).as_ref()
        )
    );
    // One row per ratio, one column per n.
    let sizes = [512usize, 1024, 2048]; // M per stock; N = 10
    let mut columns: Vec<Vec<f64>> = Vec::new();
    let mut records = Vec::new();
    for &m in &sizes {
        let d = sbr_datasets::stock(42, 10, m * 10);
        let files = d.chunk(m);
        let mut col = Vec::new();
        for &ratio in ratios {
            let band = (10 * m) as f64 * ratio;
            // A fresh recorder per configuration: each record's snapshot
            // describes exactly one (n, ratio) run.
            let rec = Arc::new(MetricsRecorder::new());
            let config = SbrConfig::new(band as usize, 1024).with_recorder(rec.clone());
            let stream = run_sbr_stream(&files, config.clone());
            col.push(stream.avg_encode_time().as_secs_f64());
            // Caches-off control run of the same configuration (legacy
            // probe path *and* legacy GetBase path): its per-phase wall
            // times are the v3 `speedup` denominators.
            let legacy_rec = Arc::new(MetricsRecorder::new());
            run_sbr_stream(
                &files,
                config
                    .without_probe_cache()
                    .without_fit_cache()
                    .with_recorder(legacy_rec.clone()),
            );
            let legacy_snap = legacy_rec.snapshot();
            let legacy_wall = SearchStats::from_snapshot(&legacy_snap).wall_secs;
            let legacy_gb_wall = GetBaseStats::from_snapshot(&legacy_snap).wall_secs;
            let snapshot = rec.snapshot();
            let search = SearchStats::from_snapshot(&snapshot).with_legacy_wall(legacy_wall);
            let get_base = GetBaseStats::from_snapshot(&snapshot).with_legacy_wall(legacy_gb_wall);
            records.push(
                BenchRecord::from_stream(
                    "fig5",
                    &[
                        ("n", (10 * m) as f64),
                        ("total_band", band.floor()),
                        ("ratio", ratio),
                    ],
                    &stream,
                )
                .with_metrics(snapshot)
                .with_search(search)
                .with_get_base(get_base),
            );
        }
        columns.push(col);
    }
    for (ri, &ratio) in ratios.iter().enumerate() {
        let cells: Vec<String> = columns.iter().map(|c| format!("{:.3}", c[ri])).collect();
        println!("{}", row(&format!("{:.0}%", ratio * 100.0), &cells));
    }
    records.push(network_sim_record(quick));
    records.push(query_sweep_record(quick));
    records.extend(storage_recovery_records(quick));
    // Canonical artifact at the workspace root (what ROADMAP/ci.sh
    // promise), plus the schema-versioned copy archived under results/.
    sbr_bench::write_bench_json("BENCH_SBR.json", &records).expect("write BENCH_SBR.json");
    std::fs::create_dir_all("results").expect("create results/");
    sbr_bench::write_bench_json("results/BENCH_SBR_v3.json", &records)
        .expect("write results/BENCH_SBR_v3.json");
}
