//! Ablations of SBR's design choices (beyond the paper's tables):
//!
//! 1. the linear-regression **fall-back** on/off (§5.1.2 argues it is the
//!    robustness net),
//! 2. **freezing the base** after the first transmission (the §4.4
//!    shortcut for constrained nodes),
//! 3. the **low-memory `GetBase`** variant vs. the full error matrix,
//! 4. **histogram bucketing policies** (the paper uses equi-depth),
//! 5. **wavelet budget allocation**: concatenated vs. per-signal (the
//!    paper reports concatenation up to 5× better), and the **2-D Haar**
//!    decomposition the paper tried and rejected,
//! 6. **stronger histogram**: v-optimal (greedy merge) vs. the paper's
//!    equi-depth,
//! 7. **non-linear encodings** (the §6 future-work direction): piecewise
//!    quadratic vs. piecewise linear regression at equal bandwidth,
//! 8. **Search strategy**: Algorithm 7's binary search (assumes a unimodal
//!    error curve) vs. exhaustive probing of every insertion count.
//!
//! Run with `--quick` (recommended) for a 4×-smaller pass.

use sbr_baselines::histogram::{Bucketing, HistogramCompressor};
use sbr_baselines::linreg::LinRegCompressor;
use sbr_baselines::quadreg::QuadRegCompressor;
use sbr_baselines::v_optimal::VOptimalCompressor;
use sbr_baselines::wavelet::WaveletCompressor;
use sbr_baselines::wavelet2d::Wavelet2dCompressor;
use sbr_baselines::Allocation;
use sbr_bench::{fmt, quick_mode, row, run_baseline_stream, run_sbr_stream, run_sbr_stream_with};
use sbr_core::{LowMemoryGetBase, SbrConfig, SbrEncoder};

fn main() {
    let quick = quick_mode();
    let setup = sbr_bench::mixed_setup(quick);
    let band = setup.n() / 10;
    let cfg = SbrConfig::new(band, setup.m_base);

    println!("=== Ablations (Mixed dataset, 10% ratio, avg SSE per transmission) ===\n");

    // 1. Fall-back.
    let with_fb = run_sbr_stream(&setup.files, cfg.clone());
    let without_fb = run_sbr_stream(&setup.files, cfg.clone().without_fallback());
    println!(
        "{}",
        row(
            "fallback",
            &[fmt(with_fb.avg_sse()), fmt(without_fb.avg_sse())]
        )
    );
    println!("{:<12}{:>14}{:>14}\n", "", "(on)", "(off)");

    // 2. Frozen base after the first transmission.
    let frozen = run_frozen_after_first(&setup.files, cfg.clone());
    println!(
        "{}",
        row("base-update", &[fmt(with_fb.avg_sse()), fmt(frozen)])
    );
    println!("{:<12}{:>14}{:>14}\n", "", "(every tx)", "(frozen@1)");

    // 3. GetBase memory variant.
    let low_mem = run_sbr_stream_with(&setup.files, cfg.clone(), Some(Box::new(LowMemoryGetBase)));
    println!(
        "{}",
        row(
            "getbase-mem",
            &[fmt(with_fb.avg_sse()), fmt(low_mem.avg_sse())]
        )
    );
    println!("{:<12}{:>14}{:>14}\n", "", "(O(n) mat)", "(O(√n))");

    // 4. Histogram policies.
    let policies = [
        Bucketing::EquiDepth,
        Bucketing::EquiWidth,
        Bucketing::MaxDiff,
    ];
    let cells: Vec<String> = policies
        .iter()
        .map(|&policy| {
            let h = HistogramCompressor {
                policy,
                allocation: Allocation::PerSignal,
            };
            fmt(run_baseline_stream(&setup.files, &h, band).avg_sse())
        })
        .collect();
    println!("{}", row("histograms", &cells));
    println!(
        "{:<12}{:>14}{:>14}{:>14}\n",
        "", "(equi-depth)", "(equi-width)", "(max-diff)"
    );

    // 5. Wavelet allocation + dimensionality.
    let mut cells: Vec<String> = [Allocation::Concatenated, Allocation::PerSignal]
        .iter()
        .map(|&allocation| {
            let w = WaveletCompressor { allocation };
            fmt(run_baseline_stream(&setup.files, &w, band).avg_sse())
        })
        .collect();
    cells.push(fmt(run_baseline_stream(
        &setup.files,
        &Wavelet2dCompressor,
        band,
    )
    .avg_sse()));
    println!("{}", row("wavelets", &cells));
    println!(
        "{:<12}{:>14}{:>14}{:>14}\n",
        "", "(concat)", "(per-signal)", "(2-D)"
    );

    // 6. V-optimal vs equi-depth histograms.
    let cells = vec![
        fmt(run_baseline_stream(&setup.files, &HistogramCompressor::default(), band).avg_sse()),
        fmt(run_baseline_stream(&setup.files, &VOptimalCompressor, band).avg_sse()),
    ];
    println!("{}", row("hist-quality", &cells));
    println!("{:<12}{:>14}{:>14}\n", "", "(equi-depth)", "(v-optimal)");

    // 8. Binary vs exhaustive insertion search.
    let mut cfg_ex = cfg.clone();
    cfg_ex.exhaustive_search = true;
    let exhaustive = run_sbr_stream(&setup.files, cfg_ex);
    println!(
        "{}",
        row(
            "search",
            &[fmt(with_fb.avg_sse()), fmt(exhaustive.avg_sse())]
        )
    );
    println!("{:<12}{:>14}{:>14}\n", "", "(binary)", "(exhaustive)");

    // 7. Non-linear encodings: quadratic vs linear piecewise regression.
    let cells = vec![
        fmt(run_baseline_stream(&setup.files, &LinRegCompressor::default(), band).avg_sse()),
        fmt(run_baseline_stream(&setup.files, &QuadRegCompressor, band).avg_sse()),
    ];
    println!("{}", row("encoding", &cells));
    println!("{:<12}{:>14}{:>14}", "", "(linear)", "(quadratic)");
}

/// Stream with base updates allowed only on the first transmission.
fn run_frozen_after_first(files: &[Vec<Vec<f64>>], cfg: SbrConfig) -> f64 {
    use sbr_core::{Decoder, ErrorMetric};
    let n = files[0].len();
    let m = files[0][0].len();
    let mut enc = SbrEncoder::new(n, m, cfg).expect("valid config");
    let mut dec = Decoder::new();
    let mut total = 0.0;
    for (t, rows) in files.iter().enumerate() {
        if t == 1 {
            enc.set_update_base(false);
        }
        let tx = enc.encode(rows).expect("encode");
        let rec = dec.decode(&tx).expect("decode");
        for (orig, r) in rows.iter().zip(&rec) {
            total += ErrorMetric::Sse.score(orig, r);
        }
    }
    total / files.len() as f64
}
