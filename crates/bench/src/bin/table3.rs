//! Table 3: Phone dataset — average SSE *and* total sum squared relative
//! error vs. compression ratio. The relative-error columns re-run SBR with
//! the weighted-regression variant (§4.5 / the companion TR).
//!
//! Run with `--quick` for a 4×-smaller sanity pass.

use sbr_baselines::dct::DctCompressor;
use sbr_baselines::histogram::HistogramCompressor;
use sbr_baselines::wavelet::WaveletCompressor;
use sbr_baselines::Allocation;
use sbr_bench::{fmt, quick_mode, row, run_baseline_stream, run_sbr_stream, RATIOS};
use sbr_core::{ErrorMetric, SbrConfig};

fn main() {
    let setup = sbr_bench::phone_setup(quick_mode());
    println!("=== Table 3 — Phone dataset (n = {}) ===", setup.n());

    let wavelets = WaveletCompressor {
        allocation: Allocation::Concatenated,
    };
    let dct = DctCompressor {
        allocation: Allocation::Concatenated,
    };
    let hist = HistogramCompressor::default();

    println!("\n-- Average SSE error --");
    println!(
        "{}",
        row(
            "ratio",
            ["SBR", "Wavelets", "DCT", "Histograms"]
                .map(str::to_string)
                .as_ref()
        )
    );
    let mut rel_rows = Vec::new();
    for ratio in RATIOS {
        let band = (setup.n() as f64 * ratio) as usize;
        let sbr_sse = run_sbr_stream(&setup.files, SbrConfig::new(band, setup.m_base));
        let sbr_rel = run_sbr_stream(
            &setup.files,
            SbrConfig::new(band, setup.m_base).with_metric(ErrorMetric::relative()),
        );
        let w = run_baseline_stream(&setup.files, &wavelets, band);
        let d = run_baseline_stream(&setup.files, &dct, band);
        let h = run_baseline_stream(&setup.files, &hist, band);
        println!(
            "{}",
            row(
                &format!("{:.0}%", ratio * 100.0),
                &[
                    fmt(sbr_sse.avg_sse()),
                    fmt(w.avg_sse()),
                    fmt(d.avg_sse()),
                    fmt(h.avg_sse())
                ]
            )
        );
        rel_rows.push((
            ratio,
            [
                fmt(sbr_rel.total_rel()),
                fmt(w.total_rel()),
                fmt(d.total_rel()),
                fmt(h.total_rel()),
            ],
        ));
    }

    println!("\n-- Total sum squared relative error --");
    println!(
        "{}",
        row(
            "ratio",
            ["SBR", "Wavelets", "DCT", "Histograms"]
                .map(str::to_string)
                .as_ref()
        )
    );
    for (ratio, cells) in rel_rows {
        println!("{}", row(&format!("{:.0}%", ratio * 100.0), &cells));
    }
}
