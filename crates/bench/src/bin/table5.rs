//! Table 5: alternative base-signal constructions at a 10 % compression
//! ratio — error of `GetBaseSVD()`, plain linear regression, and
//! `GetBaseDCT()` *relative to* `GetBase()`.
//!
//! As in the paper, `BestMap` runs **without** the linear-regression
//! fall-back here, so the quality of each base is not diffused. The DCT
//! base is synthesized on the fly and charged no bandwidth (appendix); the
//! linear-regression column spends the whole budget on 3-value intervals.
//!
//! Deviation noted in DESIGN.md: the on-the-fly DCT base enumerates the
//! first `min(W+1, 32)` frequencies instead of all `W+1`, keeping the
//! shift scan tractable on one core; low frequencies carry nearly all the
//! energy of every dataset involved.
//!
//! Run with `--quick` for a 4×-smaller sanity pass.

use sbr_baselines::dct_base::dct_base_signal;
use sbr_baselines::linreg::LinRegCompressor;
use sbr_baselines::svd::SvdBaseBuilder;
use sbr_bench::{quick_mode, row, run_baseline_stream, run_sbr_stream, run_sbr_stream_with, Setup};
use sbr_core::get_intervals::get_intervals;
use sbr_core::{ErrorMetric, MultiSeries, SbrConfig};

fn main() {
    let quick = quick_mode();
    println!("=== Table 5 — error relative to GetBase(), 10% ratio ===");
    println!(
        "{}",
        row(
            "dataset",
            ["GetBaseSVD", "LinearReg", "GetBaseDCT"]
                .map(str::to_string)
                .as_ref()
        )
    );
    for setup in [
        sbr_bench::weather_setup(quick),
        sbr_bench::phone_setup(quick),
        sbr_bench::stock_setup(quick),
    ] {
        run_dataset(&setup);
    }
}

fn run_dataset(setup: &Setup) {
    let band = setup.n() / 10;
    let base_cfg = SbrConfig::new(band, setup.m_base).without_fallback();

    let get_base = run_sbr_stream(&setup.files, base_cfg.clone()).avg_sse();
    let svd = run_sbr_stream_with(
        &setup.files,
        base_cfg.clone(),
        Some(Box::new(SvdBaseBuilder)),
    )
    .avg_sse();
    let linreg = run_baseline_stream(&setup.files, &LinRegCompressor::default(), band).avg_sse();
    let dct = dct_base_avg_sse(setup, band, &base_cfg);

    println!(
        "{}",
        row(
            setup.name,
            &[
                format!("{:.2}", svd / get_base),
                format!("{:.2}", linreg / get_base),
                format!("{:.2}", dct / get_base),
            ]
        )
    );
}

/// The zero-cost cosine base: full budget goes to intervals, the base is
/// generated on the fly per file.
fn dct_base_avg_sse(setup: &Setup, band: usize, cfg: &SbrConfig) -> f64 {
    let w = cfg.w_for(setup.n());
    let x = dct_base_signal(w, (w + 1).min(32));
    let mut total = 0.0;
    for rows in &setup.files {
        let data = MultiSeries::from_rows(rows).expect("uniform chunks");
        let approx = get_intervals(&x, &data, band, w, cfg).expect("dct-base approximation");
        let recs: Vec<_> = approx.intervals.iter().map(|iv| iv.record()).collect();
        let rec =
            sbr_core::get_intervals::reconstruct_flat(&x, &recs, data.len()).expect("reconstruct");
        total += ErrorMetric::Sse.score(data.flat(), &rec);
    }
    total / setup.files.len() as f64
}
