//! Figures 2–3: the motivating example. Prints the 128-day Industrial /
//! Insurance index pair (Figure 2's time series, Figure 3's XY scatter is
//! the same rows paired) and the two-value regression that encodes one
//! series in terms of the other.

use sbr_core::regression::{fit_sse, fit_sse_index};

fn main() {
    let d = sbr_datasets::indexes(42, 128);
    let industrial = &d.signals[0];
    let insurance = &d.signals[1];

    println!("=== Figure 2/3 — correlated market indexes (day, industrial, insurance) ===");
    for (t, (a, b)) in industrial.iter().zip(insurance).enumerate() {
        println!("{t:>4} {a:>12.2} {b:>12.2}");
    }

    // Figure 3's point: Insurance ≈ a·Industrial + b with tiny residual.
    let cross = fit_sse(industrial, insurance);
    // Figure 2's point: neither series is linear *in time*.
    let in_time = fit_sse_index(insurance);
    println!();
    println!(
        "insurance ≈ {:.4} · industrial + {:.1}   (SSE {:.1}, 2 values)",
        cross.a, cross.b, cross.err
    );
    println!(
        "insurance ≈ line(time)                 (SSE {:.1} — {}× worse)",
        in_time.err,
        (in_time.err / cross.err).round()
    );
}
