//! Table 6: number of base intervals inserted at each of the 10
//! transmissions, per dataset (§5.3 setup: equal batch sizes of 30,720
//! values, `TotalBand = 5,012`). The expected shape: most insertions land
//! in the first transmissions, Weather inserts the most features, Stock
//! the fewest.
//!
//! Run with `--quick` for a 4×-smaller sanity pass.

use sbr_bench::{quick_mode, row, run_sbr_stream};
use sbr_core::SbrConfig;

fn main() {
    let (setups, band) = sbr_bench::fig6_setups(quick_mode());
    println!("=== Table 6 — inserted base intervals per transmission (TotalBand = {band}) ===");
    println!(
        "{}",
        row(
            "dataset",
            &(1..=10).map(|t| format!("tx{t}")).collect::<Vec<_>>()
        )
    );
    for setup in &setups {
        let stream = run_sbr_stream(&setup.files, SbrConfig::new(band, setup.m_base));
        let cells: Vec<String> = stream.inserted().iter().map(ToString::to_string).collect();
        println!("{}", row(setup.name, &cells));
        let total: usize = stream.inserted().iter().sum();
        println!("{:<12}  total inserted: {total}", "");
    }
}
