//! Figure 6: SSE of the *first* transmission as the number of inserted
//! base intervals is forced from 1 to 30, normalized by the 1-interval
//! error, plus the insertion count SBR picks on its own.
//!
//! The reproduction target: a U-shaped curve (base features first help,
//! then crowd out approximation intervals) with the optimum at a small
//! number of intervals (7–9 in the paper, ≈3 % of the batch), and SBR's
//! automatic choice at or near the optimum.
//!
//! Run with `--quick` for a 4×-smaller sanity pass.

use sbr_bench::{quick_mode, row, run_sbr_stream};
use sbr_core::get_base::get_base;
use sbr_core::get_intervals::get_intervals;
use sbr_core::{ErrorMetric, MultiSeries, SbrConfig};

const MAX_FORCED: usize = 30;

fn main() {
    let (setups, band) = sbr_bench::fig6_setups(quick_mode());
    println!("=== Figure 6 — normalized first-transmission SSE vs base-signal size ===");
    println!(
        "{}",
        row(
            "intervals",
            &setups
                .iter()
                .map(|s| s.name.to_string())
                .collect::<Vec<_>>()
        )
    );

    let mut curves: Vec<Vec<Option<f64>>> = Vec::new();
    let mut picks: Vec<usize> = Vec::new();
    for setup in &setups {
        let rows = &setup.files[0];
        let data = MultiSeries::from_rows(rows).expect("uniform chunk");
        let cfg = SbrConfig::new(band, setup.m_base);
        let w = cfg.w_for(data.len());

        // Rank 30 candidates once; forcing k means inserting the first k.
        let candidates = get_base(&data, w, MAX_FORCED, ErrorMetric::Sse);
        let mut curve = Vec::with_capacity(MAX_FORCED);
        for k in 1..=MAX_FORCED {
            if k > candidates.len() || band < k * (w + 1) + 4 * data.n_signals() {
                curve.push(None);
                continue;
            }
            let mut x = Vec::with_capacity(k * w);
            for c in &candidates[..k] {
                x.extend_from_slice(c);
            }
            let budget = band - k * (w + 1);
            let err = get_intervals(&x, &data, budget, w, &cfg)
                .expect("forced-base approximation")
                .total_err;
            curve.push(Some(err));
        }
        let base = curve[0].expect("k = 1 always feasible");
        curves.push(
            curve
                .into_iter()
                .map(|e| e.map(|v| v / base))
                .collect::<Vec<_>>(),
        );

        // SBR's own choice on the first transmission.
        let stream = run_sbr_stream(&setup.files[..1], cfg);
        picks.push(stream.inserted()[0]);
    }

    for k in 1..=MAX_FORCED {
        let cells: Vec<String> = curves
            .iter()
            .map(|c| c[k - 1].map_or("-".into(), |v| format!("{v:.4}")))
            .collect();
        println!("{}", row(&k.to_string(), &cells));
    }
    println!();
    for (setup, pick) in setups.iter().zip(&picks) {
        let best = curves[setups.iter().position(|s| s.name == setup.name).unwrap()]
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|v| (i + 1, v)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(k, _)| k)
            .unwrap_or(0);
        println!(
            "{:<10} SBR inserted {pick} base intervals (forced-sweep optimum: {best})",
            setup.name
        );
    }
}
