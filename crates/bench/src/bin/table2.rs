//! Table 2: average SSE per transmission vs. compression ratio (5–30 %)
//! for the Weather and Stock datasets — SBR vs. Wavelets, DCT, Histograms.
//!
//! Run with `--quick` for a 4×-smaller sanity pass.

use sbr_baselines::dct::DctCompressor;
use sbr_baselines::histogram::HistogramCompressor;
use sbr_baselines::wavelet::WaveletCompressor;
use sbr_baselines::Allocation;
use sbr_bench::{fmt, quick_mode, row, run_baseline_stream, run_sbr_stream, Setup, RATIOS};
use sbr_core::SbrConfig;

fn main() {
    let quick = quick_mode();
    for setup in [
        sbr_bench::weather_setup(quick),
        sbr_bench::stock_setup(quick),
    ] {
        run_dataset(&setup);
    }
}

fn run_dataset(setup: &Setup) {
    println!(
        "\n=== Table 2 — {} dataset (n = {}) ===",
        setup.name,
        setup.n()
    );
    println!(
        "{}",
        row(
            "ratio",
            ["SBR", "Wavelets", "DCT", "Histograms"]
                .map(str::to_string)
                .as_ref()
        )
    );
    let wavelets = WaveletCompressor {
        allocation: Allocation::Concatenated,
    };
    let dct = DctCompressor {
        allocation: Allocation::Concatenated,
    };
    let hist = HistogramCompressor::default();
    for ratio in RATIOS {
        let band = (setup.n() as f64 * ratio) as usize;
        let sbr = run_sbr_stream(&setup.files, SbrConfig::new(band, setup.m_base));
        let cells = vec![
            fmt(sbr.avg_sse()),
            fmt(run_baseline_stream(&setup.files, &wavelets, band).avg_sse()),
            fmt(run_baseline_stream(&setup.files, &dct, band).avg_sse()),
            fmt(run_baseline_stream(&setup.files, &hist, band).avg_sse()),
        ];
        println!("{}", row(&format!("{:.0}%", ratio * 100.0), &cells));
    }
}
