//! Wire-profile experiment (beyond the paper): bytes on the air and
//! reconstruction error for the F64 / F32 / Q16 framings over a full
//! 10-transmission weather stream. The paper counts abstract *values*;
//! this binary shows what an actual mote radio would ship.
//!
//! Expected shape: F32 halves the bytes at negligible error cost; Q16
//! roughly quarters them with a bounded, data-scaled error increase.
//!
//! Run with `--quick` for a 4×-smaller pass.

use sbr_bench::{quick_mode, row};
use sbr_core::wire_profile::{decode, encode, Profile};
use sbr_core::{Decoder, ErrorMetric, SbrConfig, SbrEncoder};

fn main() {
    let setup = sbr_bench::weather_setup(quick_mode());
    let n = setup.n();
    let band = n / 10;
    let n_signals = setup.files[0].len();
    let m = setup.files[0][0].len();

    println!("=== Wire profiles — weather stream, 10% value budget ===");
    println!(
        "{}",
        row(
            "profile",
            ["bytes/tx", "bytes/value", "avg sse", "vs F64"]
                .map(str::to_string)
                .as_ref()
        )
    );

    let mut f64_sse = None;
    for profile in [Profile::F64, Profile::F32, Profile::Q16] {
        let mut enc = SbrEncoder::new(n_signals, m, SbrConfig::new(band, setup.m_base))
            .expect("valid config");
        let mut dec = Decoder::new();
        let mut bytes = 0usize;
        let mut values = 0usize;
        let mut sse = 0.0f64;
        for rows in &setup.files {
            let tx = enc.encode(rows).expect("encode");
            let frame = encode(&tx, profile);
            bytes += frame.len();
            values += tx.cost();
            let received = decode(&mut frame.clone()).expect("decode frame");
            let rec = dec.decode(&received).expect("decode tx");
            for (o, r) in rows.iter().zip(&rec) {
                sse += ErrorMetric::Sse.score(o, r);
            }
        }
        let avg_sse = sse / setup.files.len() as f64;
        let base = *f64_sse.get_or_insert(avg_sse);
        println!(
            "{}",
            row(
                &format!("{profile:?}"),
                &[
                    format!("{}", bytes / setup.files.len()),
                    format!("{:.2}", bytes as f64 / values as f64),
                    format!("{avg_sse:.2}"),
                    format!("{:+.2}%", 100.0 * (avg_sse - base) / base),
                ]
            )
        );
    }
}
