//! Table 4: the Mixed dataset (3 phone states + 3 weather quantities + 3
//! stocks) — average SSE and total sum squared relative error vs.
//! compression ratio. This is the robustness experiment of §5.1.2: with
//! cross-domain correlations weak, SBR still finds piecewise correlations
//! across signals and time periods and its margin *grows*.
//!
//! Run with `--quick` for a 4×-smaller sanity pass.

use sbr_baselines::dct::DctCompressor;
use sbr_baselines::histogram::HistogramCompressor;
use sbr_baselines::wavelet::WaveletCompressor;
use sbr_baselines::Allocation;
use sbr_bench::{fmt, quick_mode, row, run_baseline_stream, run_sbr_stream, RATIOS};
use sbr_core::{ErrorMetric, SbrConfig};

fn main() {
    let setup = sbr_bench::mixed_setup(quick_mode());
    println!("=== Table 4 — Mixed dataset (n = {}) ===", setup.n());

    let wavelets = WaveletCompressor {
        allocation: Allocation::Concatenated,
    };
    let dct = DctCompressor {
        allocation: Allocation::Concatenated,
    };
    let hist = HistogramCompressor::default();

    println!("\n-- Average SSE error --");
    let header = ["SBR", "Wavelets", "DCT", "Histograms"]
        .map(str::to_string)
        .to_vec();
    println!("{}", row("ratio", &header));
    let mut rel_rows = Vec::new();
    for ratio in RATIOS {
        let band = (setup.n() as f64 * ratio) as usize;
        let sbr_sse = run_sbr_stream(&setup.files, SbrConfig::new(band, setup.m_base));
        let sbr_rel = run_sbr_stream(
            &setup.files,
            SbrConfig::new(band, setup.m_base).with_metric(ErrorMetric::relative()),
        );
        let w = run_baseline_stream(&setup.files, &wavelets, band);
        let d = run_baseline_stream(&setup.files, &dct, band);
        let h = run_baseline_stream(&setup.files, &hist, band);
        println!(
            "{}",
            row(
                &format!("{:.0}%", ratio * 100.0),
                &[
                    fmt(sbr_sse.avg_sse()),
                    fmt(w.avg_sse()),
                    fmt(d.avg_sse()),
                    fmt(h.avg_sse())
                ]
            )
        );
        rel_rows.push((
            ratio,
            [
                fmt(sbr_rel.total_rel()),
                fmt(w.total_rel()),
                fmt(d.total_rel()),
                fmt(h.total_rel()),
            ],
        ));
    }

    println!("\n-- Total sum squared relative error --");
    println!("{}", row("ratio", &header));
    for (ratio, cells) in rel_rows {
        println!("{}", row(&format!("{:.0}%", ratio * 100.0), &cells));
    }
}
