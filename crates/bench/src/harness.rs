//! Streaming drivers and scoring shared by all experiment binaries.

use std::time::{Duration, Instant};

use sbr_baselines::Compressor;
use sbr_core::{Decoder, ErrorMetric, MultiSeries, SbrConfig, SbrEncoder};

/// Per-transmission statistics of an SBR stream.
#[derive(Debug, Clone)]
pub struct TxStats {
    /// SSE of the decoded chunk against the truth.
    pub sse: f64,
    /// Sum squared relative error (sanity bound 1).
    pub rel: f64,
    /// Values actually transmitted.
    pub cost: usize,
    /// Base intervals inserted this transmission.
    pub inserted: usize,
    /// Wall-clock encode time.
    pub encode_time: Duration,
}

/// Result of streaming a chunked dataset through one SBR encoder.
#[derive(Debug, Clone)]
pub struct SbrStream {
    /// Stats per transmission, in order.
    pub per_tx: Vec<TxStats>,
}

impl SbrStream {
    /// Mean SSE per transmission; `0.0` for an empty stream.
    pub fn avg_sse(&self) -> f64 {
        if self.per_tx.is_empty() {
            return 0.0;
        }
        self.per_tx.iter().map(|t| t.sse).sum::<f64>() / self.per_tx.len() as f64
    }

    /// Total sum squared relative error across the stream.
    pub fn total_rel(&self) -> f64 {
        self.per_tx.iter().map(|t| t.rel).sum()
    }

    /// Mean encode wall time; [`Duration::ZERO`] for an empty stream.
    pub fn avg_encode_time(&self) -> Duration {
        if self.per_tx.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = self.per_tx.iter().map(|t| t.encode_time).sum();
        total / self.per_tx.len() as u32
    }

    /// Inserted base intervals per transmission.
    pub fn inserted(&self) -> Vec<usize> {
        self.per_tx.iter().map(|t| t.inserted).collect()
    }
}

/// Stream `files` (each `files[t][signal][sample]`) through a fresh
/// [`SbrEncoder`] under `config`, decoding and scoring every transmission.
///
/// Panics on encoder/decoder errors: the harness runs under configurations
/// it constructs itself, so any error is a bug worth a loud failure.
pub fn run_sbr_stream(files: &[Vec<Vec<f64>>], config: SbrConfig) -> SbrStream {
    run_sbr_stream_with(files, config, None)
}

/// As [`run_sbr_stream`] but with an optional custom base construction.
pub fn run_sbr_stream_with(
    files: &[Vec<Vec<f64>>],
    config: SbrConfig,
    builder: Option<Box<dyn sbr_core::BaseBuilder + Send>>,
) -> SbrStream {
    let n = files[0].len();
    let m = files[0][0].len();
    let obs = config.obs.clone();
    let mut encoder = match builder {
        Some(b) => SbrEncoder::with_builder(n, m, config, b),
        None => SbrEncoder::new(n, m, config),
    }
    .expect("harness config must be valid");
    let mut decoder = Decoder::new();
    let mut per_tx = Vec::with_capacity(files.len());
    for rows in files {
        let start = Instant::now();
        let tx = encoder.encode(rows).expect("encode");
        let encode_time = start.elapsed();
        let stats = encoder.last_stats().expect("stats after encode");
        let rec = {
            let _span = obs.span("sbr_core.codec.decode_ns", &obs.codec_decode_ns);
            decoder.decode(&tx).expect("decode")
        };
        let (mut sse, mut rel) = (0.0, 0.0);
        for (orig, r) in rows.iter().zip(&rec) {
            sse += ErrorMetric::Sse.score(orig, r);
            rel += ErrorMetric::relative().score(orig, r);
        }
        per_tx.push(TxStats {
            sse,
            rel,
            cost: tx.cost(),
            inserted: stats.inserted,
            encode_time,
        });
    }
    SbrStream { per_tx }
}

/// Result of streaming a chunked dataset through a stateless baseline.
#[derive(Debug, Clone)]
pub struct BaselineStream {
    /// SSE per file.
    pub sse: Vec<f64>,
    /// Relative error per file.
    pub rel: Vec<f64>,
}

impl BaselineStream {
    /// Mean SSE per file.
    pub fn avg_sse(&self) -> f64 {
        self.sse.iter().sum::<f64>() / self.sse.len() as f64
    }

    /// Total relative error.
    pub fn total_rel(&self) -> f64 {
        self.rel.iter().sum()
    }
}

/// Compress every file independently with `method` under `budget_values`
/// per file and score the reconstructions.
pub fn run_baseline_stream(
    files: &[Vec<Vec<f64>>],
    method: &dyn Compressor,
    budget_values: usize,
) -> BaselineStream {
    let mut sse = Vec::with_capacity(files.len());
    let mut rel = Vec::with_capacity(files.len());
    for rows in files {
        let data = MultiSeries::from_rows(rows).expect("chunk shapes are uniform");
        let rec = method.compress_reconstruct(&data, budget_values);
        sse.push(ErrorMetric::Sse.score(data.flat(), &rec));
        rel.push(ErrorMetric::relative().score(data.flat(), &rec));
    }
    BaselineStream { sse, rel }
}

/// Render one formatted table row (used by every binary so outputs align).
pub fn row(label: &str, cells: &[String]) -> String {
    let mut s = format!("{label:<12}");
    for c in cells {
        s.push_str(&format!("{c:>14}"));
    }
    s
}

/// Format a float compactly for table cells.
pub fn fmt(v: f64) -> String {
    // lint:allow(float-eq): display-only exact-zero shortcut in a formatter
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

/// True when `--quick` was passed: shrink the experiment for fast
/// iteration (documented in each binary's header).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// One machine-readable benchmark record: a single configuration of one
/// experiment, scored from its [`SbrStream`].
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Experiment name, e.g. `"fig5"`.
    pub experiment: String,
    /// Numeric configuration parameters (`n`, `total_band`, `ratio`, ...).
    pub params: Vec<(String, f64)>,
    /// Mean encode wall time per transmission, in seconds.
    pub avg_encode_secs: f64,
    /// Mean SSE per transmission.
    pub avg_sse: f64,
    /// Total sum squared relative error across the stream.
    pub total_rel: f64,
    /// Number of transmissions streamed.
    pub transmissions: usize,
    /// Base intervals inserted, per transmission.
    pub inserted: Vec<usize>,
    /// Frozen `sbr-obs` metrics for this configuration's run (per-phase
    /// durations, shift-strategy decisions, base-signal churn, network
    /// counters, …). `None` when the run was not instrumented; serialized
    /// as JSON `null` then.
    pub metrics: Option<sbr_obs::Snapshot>,
    /// Search-phase statistics (since `sbr-bench/v3`): probe count,
    /// probe-cache traffic and search wall time, plus the legacy-path wall
    /// time when the configuration was re-measured with
    /// `probe_cache = false`. `None` when not instrumented; serialized as
    /// JSON `null` then.
    pub search: Option<SearchStats>,
    /// GetBase-phase statistics: benefit-matrix size, fit-cache traffic
    /// and build wall time, plus the legacy-path wall time when the
    /// configuration was re-measured with `get_base_fit_cache = false`.
    /// Additive member of the `sbr-bench/v3` schema (readers that ignore
    /// unknown members parse records carrying it unchanged). `None` when
    /// not instrumented; serialized as JSON `null` then.
    pub get_base: Option<GetBaseStats>,
    /// ARQ/resync recovery statistics, for records produced by a
    /// loss-tolerant network run ([`sensor_net::Strategy::SbrArq`]).
    /// Additive member of the `sbr-bench/v3` schema: readers that ignore
    /// unknown members parse records carrying it unchanged. `None` for
    /// ordinary encoder records; serialized as JSON `null` then.
    pub recovery: Option<sensor_net::RecoveryStats>,
    /// Compressed-domain query-engine statistics: query count, plan-cache
    /// traffic, interval fold/boundary counts and wall times for the
    /// engine and the full-decode baseline. Additive member of the
    /// `sbr-bench/v3` schema: readers that ignore unknown members parse
    /// records carrying it unchanged. `None` for records not produced by
    /// a query sweep; serialized as JSON `null` then.
    pub query: Option<QueryStats>,
    /// Segmented-store recovery statistics: history size, sealed-segment
    /// and checkpoint counts, how many records the checkpointed load
    /// actually replayed, and the recovery wall times. Additive member of
    /// the `sbr-bench/v3` schema: readers that ignore unknown members
    /// parse records carrying it unchanged. `None` for records not
    /// produced by a storage recovery sweep; serialized as JSON `null`
    /// then.
    pub storage: Option<StorageStats>,
}

/// The `storage` block of a `sbr-bench/v3` record: one segmented-store
/// recovery measurement. The headline claim is `replayed_records ≪
/// records`: a checkpointed load replays only the post-checkpoint tail,
/// so `wall_secs` stays flat while `records` (the persisted history)
/// grows.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StorageStats {
    /// Frames in the persisted history across all sensor stores.
    pub records: u64,
    /// Sealed segment files across all stores.
    pub segments_sealed: u64,
    /// Checkpoint files present after the run (post-compaction).
    pub checkpoints: u64,
    /// Records the checkpointed load replayed (active-tail frames only).
    pub replayed_records: u64,
    /// Wall time of the checkpointed load (scan + tail replay), seconds.
    pub wall_secs: f64,
    /// Wall time of a full-history replay of the same stores, seconds;
    /// `None` when the control was not measured.
    pub full_replay_wall_secs: Option<f64>,
}

impl StorageStats {
    /// Checkpointed-load speedup over the full-history replay, when both
    /// sides were measured.
    pub fn speedup(&self) -> Option<f64> {
        match self.full_replay_wall_secs {
            Some(full) if self.wall_secs > 0.0 => Some(full / self.wall_secs),
            _ => None,
        }
    }
}

/// The `search` block of a `sbr-bench/v3` record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SearchStats {
    /// `GetIntervals` probes the insertion searches ran.
    pub probes: u64,
    /// Probe-cache fits served from an existing entry.
    pub cache_hits: u64,
    /// Probe-cache fits that created their entry.
    pub cache_misses: u64,
    /// Total `Search` wall time across the stream, seconds.
    pub wall_secs: f64,
    /// `Search` wall time of the same configuration re-run with the legacy
    /// `probe_cache = false` path; `None` when not measured.
    pub legacy_wall_secs: Option<f64>,
}

impl SearchStats {
    /// Extract the search-phase statistics from an instrumented run's
    /// snapshot.
    pub fn from_snapshot(snap: &sbr_obs::Snapshot) -> Self {
        let wall_ns = snap
            .histogram("sbr_core.search.run_ns")
            .map(|h| h.sum)
            .unwrap_or(0);
        SearchStats {
            probes: snap.counter("sbr_core.search.probes").unwrap_or(0),
            cache_hits: snap.counter("sbr_core.probe_cache.hits").unwrap_or(0),
            cache_misses: snap.counter("sbr_core.probe_cache.misses").unwrap_or(0),
            wall_secs: wall_ns as f64 / 1e9,
            legacy_wall_secs: None,
        }
    }

    /// Attach the legacy-path wall time (builder style).
    pub fn with_legacy_wall(mut self, secs: f64) -> Self {
        self.legacy_wall_secs = Some(secs);
        self
    }

    /// Legacy-over-cached search speedup, when both sides were measured.
    pub fn speedup(&self) -> Option<f64> {
        match self.legacy_wall_secs {
            Some(legacy) if self.wall_secs > 0.0 => Some(legacy / self.wall_secs),
            _ => None,
        }
    }
}

/// The `get_base` block of a `sbr-bench/v3` record.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GetBaseStats {
    /// `K×K` benefit-matrix size of the last `GetBase` run.
    pub matrix_cells: u64,
    /// Pair errors served from the fit-cache memo.
    pub fit_cache_hits: u64,
    /// Pair errors that required a fresh fit.
    pub fit_cache_misses: u64,
    /// Total `GetBase` build wall time across the stream, seconds.
    pub wall_secs: f64,
    /// `GetBase` wall time of the same configuration re-run with the
    /// legacy `get_base_fit_cache = false` path; `None` when not measured.
    pub legacy_wall_secs: Option<f64>,
}

impl GetBaseStats {
    /// Extract the GetBase-phase statistics from an instrumented run's
    /// snapshot.
    pub fn from_snapshot(snap: &sbr_obs::Snapshot) -> Self {
        let wall_ns = snap
            .histogram("sbr_core.get_base.build_ns")
            .map(|h| h.sum)
            .unwrap_or(0);
        GetBaseStats {
            matrix_cells: snap.gauge("sbr_core.get_base.matrix_cells").unwrap_or(0.0) as u64,
            fit_cache_hits: snap
                .counter("sbr_core.get_base.fit_cache.hits")
                .unwrap_or(0),
            fit_cache_misses: snap
                .counter("sbr_core.get_base.fit_cache.misses")
                .unwrap_or(0),
            wall_secs: wall_ns as f64 / 1e9,
            legacy_wall_secs: None,
        }
    }

    /// Attach the legacy-path wall time (builder style).
    pub fn with_legacy_wall(mut self, secs: f64) -> Self {
        self.legacy_wall_secs = Some(secs);
        self
    }

    /// Legacy-over-cached GetBase speedup, when both sides were measured.
    pub fn speedup(&self) -> Option<f64> {
        match self.legacy_wall_secs {
            Some(legacy) if self.wall_secs > 0.0 => Some(legacy / self.wall_secs),
            _ => None,
        }
    }
}

/// The `query` block of a `sbr-bench/v3` record: one compressed-domain
/// query sweep against its full-decode baseline.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryStats {
    /// Range queries the compressed-domain engine answered.
    pub queries: u64,
    /// Queries served from a cached plan.
    pub plan_cache_hits: u64,
    /// Queries that resolved and cached a fresh plan.
    pub plan_cache_misses: u64,
    /// Intervals whose contribution came from precomputed moments.
    pub intervals_folded: u64,
    /// Intervals a range split mid-way (only their window was evaluated).
    pub boundary_decodes: u64,
    /// Total compressed-engine wall time across the sweep, seconds.
    pub wall_secs: f64,
    /// Queries re-run through the full-decode baseline (a subsample — the
    /// baseline is too slow to run the full sweep).
    pub decode_queries: u64,
    /// Full-decode baseline wall time across `decode_queries`, seconds;
    /// `None` when the baseline was not measured.
    pub decode_wall_secs: Option<f64>,
}

impl QueryStats {
    /// Extract the query-engine statistics from an instrumented sweep's
    /// snapshot.
    pub fn from_snapshot(snap: &sbr_obs::Snapshot) -> Self {
        let (queries, wall_ns) = snap
            .histogram("sbr_core.query.query_ns")
            .map(|h| (h.count, h.sum))
            .unwrap_or((0, 0));
        QueryStats {
            queries,
            plan_cache_hits: snap.counter("sbr_core.query.plan_cache.hits").unwrap_or(0),
            plan_cache_misses: snap
                .counter("sbr_core.query.plan_cache.misses")
                .unwrap_or(0),
            intervals_folded: snap.counter("sbr_core.query.intervals_folded").unwrap_or(0),
            boundary_decodes: snap.counter("sbr_core.query.boundary_decodes").unwrap_or(0),
            wall_secs: wall_ns as f64 / 1e9,
            decode_queries: 0,
            decode_wall_secs: None,
        }
    }

    /// Attach the full-decode baseline measurement (builder style).
    pub fn with_decode_baseline(mut self, queries: u64, wall_secs: f64) -> Self {
        self.decode_queries = queries;
        self.decode_wall_secs = Some(wall_secs);
        self
    }

    /// Per-query decode-over-compressed speedup, when both sides were
    /// measured (each side normalized by its own query count).
    pub fn speedup(&self) -> Option<f64> {
        let decode = self.decode_wall_secs?;
        if self.queries == 0 || self.decode_queries == 0 || self.wall_secs <= 0.0 {
            return None;
        }
        let per_fast = self.wall_secs / self.queries as f64;
        let per_slow = decode / self.decode_queries as f64;
        (per_fast > 0.0).then(|| per_slow / per_fast)
    }
}

impl BenchRecord {
    /// Score `stream` into a record for `experiment` under `params`.
    pub fn from_stream(experiment: &str, params: &[(&str, f64)], stream: &SbrStream) -> Self {
        BenchRecord {
            experiment: experiment.to_string(),
            params: params.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            avg_encode_secs: stream.avg_encode_time().as_secs_f64(),
            avg_sse: stream.avg_sse(),
            total_rel: stream.total_rel(),
            transmissions: stream.per_tx.len(),
            inserted: stream.inserted(),
            metrics: None,
            search: None,
            get_base: None,
            recovery: None,
            query: None,
            storage: None,
        }
    }

    /// Attach a metrics snapshot (builder style). Also derives the
    /// record's `search` and `get_base` blocks from the snapshot's
    /// per-phase metrics.
    pub fn with_metrics(mut self, metrics: sbr_obs::Snapshot) -> Self {
        self.search = Some(SearchStats::from_snapshot(&metrics));
        self.get_base = Some(GetBaseStats::from_snapshot(&metrics));
        self.metrics = Some(metrics);
        self
    }

    /// Attach an explicit `search` block (builder style) — used to add the
    /// legacy-path wall time after a comparison re-run.
    pub fn with_search(mut self, search: SearchStats) -> Self {
        self.search = Some(search);
        self
    }

    /// Attach an explicit `get_base` block (builder style) — used to add
    /// the legacy-path wall time after a comparison re-run.
    pub fn with_get_base(mut self, get_base: GetBaseStats) -> Self {
        self.get_base = Some(get_base);
        self
    }

    /// Attach ARQ recovery statistics (builder style) — used by records
    /// scored from a loss-tolerant network run.
    pub fn with_recovery(mut self, recovery: sensor_net::RecoveryStats) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Attach a `query` block (builder style) — used by records scored
    /// from a compressed-domain query sweep.
    pub fn with_query(mut self, query: QueryStats) -> Self {
        self.query = Some(query);
        self
    }

    /// Attach a `storage` block (builder style) — used by records scored
    /// from a segmented-store recovery sweep.
    pub fn with_storage(mut self, storage: StorageStats) -> Self {
        self.storage = Some(storage);
        self
    }
}

/// Render `v` as a JSON number (`null` for non-finite values, which JSON
/// cannot represent).
fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Escape `s` for embedding in a JSON string literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Serialize `records` to the `BENCH_SBR.json` schema (documented in the
/// repository README): `{"schema": "sbr-bench/v3", "records": [...]}` with
/// one object per configuration. Since v2 every record carries a
/// `"metrics"` member: an `sbr-obs` snapshot object (name → typed metric)
/// for instrumented runs, JSON `null` otherwise. Since v3 every record
/// additionally carries a `"search"` member: probe count, probe-cache
/// traffic and search-phase wall times (plus the derived speedup when the
/// legacy path was re-measured), or JSON `null` when not instrumented.
/// Records scored from a loss-tolerant network run additionally carry a
/// `"recovery"` member (frame/duplicate/gap/resync/ACK counts and the
/// delivered-chunk fraction), JSON `null` otherwise. Instrumented records
/// also carry a `"get_base"` member: benefit-matrix size, fit-cache
/// traffic and GetBase wall times (plus the derived speedup when the
/// legacy path was re-measured), or JSON `null` when not instrumented.
/// Records produced by a compressed-domain query sweep additionally carry
/// a `"query"` member: query count, plan-cache traffic, interval
/// fold/boundary counts and both engines' wall times (plus the derived
/// per-query speedup), JSON `null` otherwise.
/// Records produced by a segmented-store recovery sweep additionally
/// carry a `"storage"` member: persisted-history size, sealed-segment and
/// checkpoint counts, the records the checkpointed load replayed, and
/// both recovery wall times (plus the derived speedup over a
/// full-history replay), JSON `null` otherwise.
/// All of these bumps are additive — v1/v2/v3 consumers that ignore
/// unknown members parse the artifact unchanged and the schema string
/// stays `sbr-bench/v3`.
/// Hand-rolled so the bench harness carries no serialization dependency.
pub fn bench_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n  \"schema\": \"sbr-bench/v3\",\n  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"experiment\": {}, ", json_str(&r.experiment)));
        out.push_str("\"params\": {");
        for (j, (k, v)) in r.params.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("{}: {}", json_str(k), json_num(*v)));
        }
        out.push_str("}, ");
        out.push_str(&format!(
            "\"avg_encode_secs\": {}, \"avg_sse\": {}, \"total_rel\": {}, \"transmissions\": {}, ",
            json_num(r.avg_encode_secs),
            json_num(r.avg_sse),
            json_num(r.total_rel),
            r.transmissions
        ));
        out.push_str("\"inserted\": [");
        for (j, ins) in r.inserted.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&ins.to_string());
        }
        out.push_str("], \"search\": ");
        match &r.search {
            Some(s) => {
                out.push_str(&format!(
                    "{{\"probes\": {}, \"cache_hits\": {}, \"cache_misses\": {}, \
                     \"wall_secs\": {}, \"legacy_wall_secs\": {}, \"speedup\": {}}}",
                    s.probes,
                    s.cache_hits,
                    s.cache_misses,
                    json_num(s.wall_secs),
                    s.legacy_wall_secs.map_or("null".into(), json_num),
                    s.speedup().map_or("null".into(), json_num),
                ));
            }
            None => out.push_str("null"),
        }
        out.push_str(", \"get_base\": ");
        match &r.get_base {
            Some(g) => {
                out.push_str(&format!(
                    "{{\"matrix_cells\": {}, \"fit_cache_hits\": {}, \
                     \"fit_cache_misses\": {}, \"wall_secs\": {}, \
                     \"legacy_wall_secs\": {}, \"speedup\": {}}}",
                    g.matrix_cells,
                    g.fit_cache_hits,
                    g.fit_cache_misses,
                    json_num(g.wall_secs),
                    g.legacy_wall_secs.map_or("null".into(), json_num),
                    g.speedup().map_or("null".into(), json_num),
                ));
            }
            None => out.push_str("null"),
        }
        out.push_str(", \"recovery\": ");
        match &r.recovery {
            Some(s) => {
                out.push_str(&format!(
                    "{{\"frames_sent\": {}, \"frames_delivered\": {}, \
                     \"duplicates_discarded\": {}, \"gaps_detected\": {}, \
                     \"corrupt_rejected\": {}, \"resyncs\": {}, \
                     \"retx_overflows\": {}, \"max_retx_depth\": {}, \
                     \"crashes\": {}, \"acks_sent\": {}, \
                     \"chunks_flushed\": {}, \"chunks_delivered\": {}, \
                     \"delivered_fraction\": {}}}",
                    s.frames_sent,
                    s.frames_delivered,
                    s.duplicates_discarded,
                    s.gaps_detected,
                    s.corrupt_rejected,
                    s.resyncs,
                    s.retx_overflows,
                    s.max_retx_depth,
                    s.crashes,
                    s.acks_sent,
                    s.chunks_flushed,
                    s.chunks_delivered,
                    json_num(s.delivered_fraction()),
                ));
            }
            None => out.push_str("null"),
        }
        out.push_str(", \"query\": ");
        match &r.query {
            Some(q) => {
                out.push_str(&format!(
                    "{{\"queries\": {}, \"plan_cache_hits\": {}, \
                     \"plan_cache_misses\": {}, \"intervals_folded\": {}, \
                     \"boundary_decodes\": {}, \"wall_secs\": {}, \
                     \"decode_queries\": {}, \"decode_wall_secs\": {}, \
                     \"speedup\": {}}}",
                    q.queries,
                    q.plan_cache_hits,
                    q.plan_cache_misses,
                    q.intervals_folded,
                    q.boundary_decodes,
                    json_num(q.wall_secs),
                    q.decode_queries,
                    q.decode_wall_secs.map_or("null".into(), json_num),
                    q.speedup().map_or("null".into(), json_num),
                ));
            }
            None => out.push_str("null"),
        }
        out.push_str(", \"storage\": ");
        match &r.storage {
            Some(s) => {
                out.push_str(&format!(
                    "{{\"records\": {}, \"segments_sealed\": {}, \
                     \"checkpoints\": {}, \"replayed_records\": {}, \
                     \"wall_secs\": {}, \"full_replay_wall_secs\": {}, \
                     \"speedup\": {}}}",
                    s.records,
                    s.segments_sealed,
                    s.checkpoints,
                    s.replayed_records,
                    json_num(s.wall_secs),
                    s.full_replay_wall_secs.map_or("null".into(), json_num),
                    s.speedup().map_or("null".into(), json_num),
                ));
            }
            None => out.push_str("null"),
        }
        out.push_str(", \"metrics\": ");
        match &r.metrics {
            Some(snap) => out.push_str(&snap.to_json_value().to_string()),
            None => out.push_str("null"),
        }
        out.push('}');
        if i + 1 < records.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Write `records` as `BENCH_SBR.json`-schema JSON to `path`, logging the
/// destination so CI output records where the artifact landed.
pub fn write_bench_json(path: &str, records: &[BenchRecord]) -> std::io::Result<()> {
    std::fs::write(path, bench_json(records))?;
    println!("wrote {} record(s) to {path}", records.len());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files() -> Vec<Vec<Vec<f64>>> {
        (0..3)
            .map(|f| {
                (0..2)
                    .map(|s| {
                        (0..64)
                            .map(|i| ((i + f * 64) as f64 * 0.2 + s as f64).sin() * 3.0)
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn sbr_stream_scores_every_file() {
        let r = run_sbr_stream(&files(), SbrConfig::new(40, 32));
        assert_eq!(r.per_tx.len(), 3);
        assert!(r.avg_sse().is_finite());
        assert!(r.total_rel().is_finite());
        for t in &r.per_tx {
            assert!(t.cost <= 40);
        }
    }

    #[test]
    fn baseline_stream_scores_every_file() {
        let w = sbr_baselines::wavelet::WaveletCompressor::default();
        let r = run_baseline_stream(&files(), &w, 40);
        assert_eq!(r.sse.len(), 3);
        assert!(r.avg_sse() > 0.0);
    }

    #[test]
    fn fmt_is_stable() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.5), "1234");
        assert_eq!(fmt(12.3456), "12.346");
        assert_eq!(fmt(0.12345), "0.12345");
    }

    #[test]
    fn empty_stream_scores_to_zero() {
        let r = SbrStream { per_tx: Vec::new() };
        assert_eq!(r.avg_sse(), 0.0);
        assert_eq!(r.total_rel(), 0.0);
        assert_eq!(r.avg_encode_time(), Duration::ZERO);
        assert!(r.inserted().is_empty());
    }

    #[test]
    fn bench_json_is_well_formed() {
        let stream = run_sbr_stream(&files(), SbrConfig::new(40, 32));
        let rec = BenchRecord::from_stream("fig5", &[("n", 128.0), ("ratio", 0.05)], &stream);
        let json = bench_json(&[rec.clone(), rec]);
        assert!(json.starts_with("{\n  \"schema\": \"sbr-bench/v3\""));
        assert!(json.contains("\"experiment\": \"fig5\""));
        assert!(json.contains("\"params\": {\"n\": 128, \"ratio\": 0.05}"));
        assert!(json.contains("\"transmissions\": 3"));
        assert!(json.contains("\"metrics\": null"), "uninstrumented → null");
        assert!(json.contains("\"search\": null"), "uninstrumented → null");
        assert!(json.contains("\"get_base\": null"), "uninstrumented → null");
        assert!(json.contains("\"recovery\": null"), "encoder-only → null");
        // The artifact parses with the sbr-obs JSON parser.
        let v = sbr_obs::json::parse(&json).expect("valid JSON");
        assert_eq!(
            v.get("schema").and_then(sbr_obs::json::Value::as_str),
            Some("sbr-bench/v3")
        );
    }

    #[test]
    fn bench_json_search_block_is_additive() {
        // A v2-style reader (ignores unknown members, looks only at the
        // members it knows) must parse a v3 artifact unchanged.
        let stream = run_sbr_stream(&files(), SbrConfig::new(40, 32));
        let record = BenchRecord::from_stream("fig5", &[("n", 128.0)], &stream).with_search(
            SearchStats {
                probes: 9,
                cache_hits: 100,
                cache_misses: 20,
                wall_secs: 0.5,
                legacy_wall_secs: None,
            }
            .with_legacy_wall(1.5),
        );
        let json = bench_json(&[record]);
        let v = sbr_obs::json::parse(&json).expect("valid JSON");
        let rec = &v
            .get("records")
            .and_then(sbr_obs::json::Value::as_arr)
            .unwrap()[0];
        // v2 members untouched…
        assert!(rec.get("avg_encode_secs").is_some());
        assert!(rec.get("metrics").is_some());
        // …and the v3 block carries the search-phase statistics.
        let search = rec.get("search").expect("search member");
        assert_eq!(
            search.get("probes").and_then(sbr_obs::json::Value::as_f64),
            Some(9.0)
        );
        assert_eq!(
            search
                .get("cache_hits")
                .and_then(sbr_obs::json::Value::as_f64),
            Some(100.0)
        );
        assert_eq!(
            search.get("speedup").and_then(sbr_obs::json::Value::as_f64),
            Some(3.0)
        );
    }

    #[test]
    fn bench_json_get_base_block_is_additive() {
        // A reader that only knows the earlier v3 members must parse an
        // artifact carrying the get_base block unchanged.
        let stream = run_sbr_stream(&files(), SbrConfig::new(40, 32));
        let record = BenchRecord::from_stream("fig5", &[("n", 128.0)], &stream).with_get_base(
            GetBaseStats {
                matrix_cells: 100,
                fit_cache_hits: 500,
                fit_cache_misses: 90,
                wall_secs: 0.25,
                legacy_wall_secs: None,
            }
            .with_legacy_wall(0.75),
        );
        let json = bench_json(&[record]);
        assert!(json.contains("\"schema\": \"sbr-bench/v3\""), "no bump");
        let v = sbr_obs::json::parse(&json).expect("valid JSON");
        let rec = &v
            .get("records")
            .and_then(sbr_obs::json::Value::as_arr)
            .unwrap()[0];
        // Existing members untouched…
        assert!(rec.get("avg_encode_secs").is_some());
        assert!(rec.get("search").is_some());
        // …and the additive block carries the GetBase-phase statistics.
        let gb = rec.get("get_base").expect("get_base member");
        let f = |k: &str| gb.get(k).and_then(sbr_obs::json::Value::as_f64);
        assert_eq!(f("matrix_cells"), Some(100.0));
        assert_eq!(f("fit_cache_hits"), Some(500.0));
        assert_eq!(f("fit_cache_misses"), Some(90.0));
        assert_eq!(f("speedup"), Some(3.0));
    }

    #[test]
    fn instrumented_metrics_derive_the_get_base_block() {
        use sbr_obs::{MetricsRecorder, Recorder as _};
        use std::sync::Arc;
        let rec = Arc::new(MetricsRecorder::new());
        let config = SbrConfig::new(40, 32).with_recorder(rec.clone());
        let stream = run_sbr_stream(&files(), config);
        let record =
            BenchRecord::from_stream("fig5", &[("n", 128.0)], &stream).with_metrics(rec.snapshot());
        let gb = record.get_base.expect("derived from snapshot");
        assert!(gb.wall_secs > 0.0, "build span must be recorded");
        assert!(
            gb.fit_cache_hits > 0,
            "default config runs the cached GetBase path"
        );
        assert!(gb.matrix_cells > 0);
    }

    #[test]
    fn bench_json_recovery_block_is_additive() {
        // A reader that only knows the pre-recovery v3 members must parse
        // an artifact carrying the block unchanged.
        let stream = run_sbr_stream(&files(), SbrConfig::new(40, 32));
        let record = BenchRecord::from_stream("network_sim", &[("nodes", 3.0)], &stream)
            .with_recovery(sensor_net::RecoveryStats {
                frames_sent: 12,
                frames_delivered: 10,
                duplicates_discarded: 1,
                gaps_detected: 2,
                resyncs: 1,
                chunks_flushed: 8,
                chunks_delivered: 8,
                ..Default::default()
            });
        let json = bench_json(&[record]);
        assert!(json.contains("\"schema\": \"sbr-bench/v3\""), "no bump");
        let v = sbr_obs::json::parse(&json).expect("valid JSON");
        let rec = &v
            .get("records")
            .and_then(sbr_obs::json::Value::as_arr)
            .unwrap()[0];
        // Existing members untouched…
        assert!(rec.get("avg_encode_secs").is_some());
        assert!(rec.get("metrics").is_some());
        // …and the additive block carries the protocol statistics.
        let recovery = rec.get("recovery").expect("recovery member");
        let f = |k: &str| recovery.get(k).and_then(sbr_obs::json::Value::as_f64);
        assert_eq!(f("frames_sent"), Some(12.0));
        assert_eq!(f("resyncs"), Some(1.0));
        assert_eq!(f("delivered_fraction"), Some(1.0));
    }

    #[test]
    fn bench_json_query_block_is_additive() {
        // A reader that only knows the pre-query v3 members must parse an
        // artifact carrying the block unchanged.
        let stream = run_sbr_stream(&files(), SbrConfig::new(40, 32));
        let record = BenchRecord::from_stream("query_sweep", &[("queries", 1e6)], &stream)
            .with_query(
                QueryStats {
                    queries: 1_000_000,
                    plan_cache_hits: 900_000,
                    plan_cache_misses: 100_000,
                    intervals_folded: 5_000_000,
                    boundary_decodes: 150_000,
                    wall_secs: 0.5,
                    ..Default::default()
                }
                .with_decode_baseline(2_000, 2.0),
            );
        let json = bench_json(&[record]);
        assert!(json.contains("\"schema\": \"sbr-bench/v3\""), "no bump");
        let v = sbr_obs::json::parse(&json).expect("valid JSON");
        let rec = &v
            .get("records")
            .and_then(sbr_obs::json::Value::as_arr)
            .unwrap()[0];
        // Existing members untouched…
        assert!(rec.get("avg_encode_secs").is_some());
        assert!(rec.get("search").is_some());
        assert!(rec.get("recovery").is_some());
        // …and the additive block carries the query-sweep statistics.
        let q = rec.get("query").expect("query member");
        let f = |k: &str| q.get(k).and_then(sbr_obs::json::Value::as_f64);
        assert_eq!(f("queries"), Some(1e6));
        assert_eq!(f("plan_cache_hits"), Some(9e5));
        assert_eq!(f("boundary_decodes"), Some(1.5e5));
        assert_eq!(f("decode_queries"), Some(2e3));
        // Per-query: 0.5µs compressed vs 1ms decode → 2000x.
        let speedup = f("speedup").expect("speedup derived");
        assert!((speedup - 2000.0).abs() < 1e-9, "{speedup}");
    }

    #[test]
    fn bench_json_storage_block_is_additive() {
        // A reader that only knows the pre-storage v3 members must parse
        // an artifact carrying the block unchanged.
        let stream = run_sbr_stream(&files(), SbrConfig::new(40, 32));
        let record = BenchRecord::from_stream("storage_recovery", &[("history", 240.0)], &stream)
            .with_storage(StorageStats {
                records: 240,
                segments_sealed: 20,
                checkpoints: 4,
                replayed_records: 12,
                wall_secs: 0.002,
                full_replay_wall_secs: Some(0.04),
            });
        let json = bench_json(&[record]);
        assert!(json.contains("\"schema\": \"sbr-bench/v3\""), "no bump");
        let v = sbr_obs::json::parse(&json).expect("valid JSON");
        let rec = &v
            .get("records")
            .and_then(sbr_obs::json::Value::as_arr)
            .unwrap()[0];
        // Existing members untouched…
        assert!(rec.get("avg_encode_secs").is_some());
        assert!(rec.get("search").is_some());
        assert!(rec.get("query").is_some());
        // …and the additive block carries the recovery statistics.
        let s = rec.get("storage").expect("storage member");
        let f = |k: &str| s.get(k).and_then(sbr_obs::json::Value::as_f64);
        assert_eq!(f("records"), Some(240.0));
        assert_eq!(f("segments_sealed"), Some(20.0));
        assert_eq!(f("replayed_records"), Some(12.0));
        let speedup = f("speedup").expect("speedup derived");
        assert!((speedup - 20.0).abs() < 1e-9, "{speedup}");
    }

    #[test]
    fn storage_stats_speedup_requires_both_sides() {
        let s = StorageStats {
            records: 100,
            wall_secs: 0.1,
            ..Default::default()
        };
        assert_eq!(s.speedup(), None, "no full-replay control measured");
    }

    #[test]
    fn query_stats_speedup_requires_both_sides() {
        let qs = QueryStats {
            queries: 100,
            wall_secs: 0.1,
            ..Default::default()
        };
        assert_eq!(qs.speedup(), None, "no baseline measured");
        let qs = QueryStats::default().with_decode_baseline(10, 1.0);
        assert_eq!(qs.speedup(), None, "no compressed side measured");
    }

    #[test]
    fn bench_json_embeds_instrumented_metrics() {
        use sbr_obs::{MetricsRecorder, Recorder as _};
        use std::sync::Arc;
        let rec = Arc::new(MetricsRecorder::new());
        let config = SbrConfig::new(40, 32).with_recorder(rec.clone());
        let stream = run_sbr_stream(&files(), config);
        let record =
            BenchRecord::from_stream("fig5", &[("n", 128.0)], &stream).with_metrics(rec.snapshot());
        let json = bench_json(&[record]);
        let v = sbr_obs::json::parse(&json).expect("valid JSON");
        let metrics = v
            .get("records")
            .and_then(sbr_obs::json::Value::as_arr)
            .unwrap()[0]
            .get("metrics")
            .expect("metrics member");
        let snap = sbr_obs::Snapshot::from_json_value(metrics).expect("snapshot parses");
        assert!(snap.counter("sbr_core.best_map.calls").unwrap() > 0);
        assert_eq!(
            snap.histogram("sbr_core.sbr.encode_ns").unwrap().count,
            3,
            "one encode span per file"
        );
        assert_eq!(
            snap.histogram("sbr_core.codec.decode_ns").unwrap().count,
            3,
            "one decode span per file"
        );
    }

    #[test]
    fn json_escaping_and_non_finite_numbers() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_num(f64::INFINITY), "null");
        assert_eq!(json_num(f64::NAN), "null");
        assert_eq!(json_num(2.5), "2.5");
    }
}
