//! Streaming drivers and scoring shared by all experiment binaries.

use std::time::{Duration, Instant};

use sbr_baselines::Compressor;
use sbr_core::{Decoder, ErrorMetric, MultiSeries, SbrConfig, SbrEncoder};

/// Per-transmission statistics of an SBR stream.
#[derive(Debug, Clone)]
pub struct TxStats {
    /// SSE of the decoded chunk against the truth.
    pub sse: f64,
    /// Sum squared relative error (sanity bound 1).
    pub rel: f64,
    /// Values actually transmitted.
    pub cost: usize,
    /// Base intervals inserted this transmission.
    pub inserted: usize,
    /// Wall-clock encode time.
    pub encode_time: Duration,
}

/// Result of streaming a chunked dataset through one SBR encoder.
#[derive(Debug, Clone)]
pub struct SbrStream {
    /// Stats per transmission, in order.
    pub per_tx: Vec<TxStats>,
}

impl SbrStream {
    /// Mean SSE per transmission.
    pub fn avg_sse(&self) -> f64 {
        self.per_tx.iter().map(|t| t.sse).sum::<f64>() / self.per_tx.len() as f64
    }

    /// Total sum squared relative error across the stream.
    pub fn total_rel(&self) -> f64 {
        self.per_tx.iter().map(|t| t.rel).sum()
    }

    /// Mean encode wall time.
    pub fn avg_encode_time(&self) -> Duration {
        let total: Duration = self.per_tx.iter().map(|t| t.encode_time).sum();
        total / self.per_tx.len() as u32
    }

    /// Inserted base intervals per transmission.
    pub fn inserted(&self) -> Vec<usize> {
        self.per_tx.iter().map(|t| t.inserted).collect()
    }
}

/// Stream `files` (each `files[t][signal][sample]`) through a fresh
/// [`SbrEncoder`] under `config`, decoding and scoring every transmission.
///
/// Panics on encoder/decoder errors: the harness runs under configurations
/// it constructs itself, so any error is a bug worth a loud failure.
pub fn run_sbr_stream(files: &[Vec<Vec<f64>>], config: SbrConfig) -> SbrStream {
    run_sbr_stream_with(files, config, None)
}

/// As [`run_sbr_stream`] but with an optional custom base construction.
pub fn run_sbr_stream_with(
    files: &[Vec<Vec<f64>>],
    config: SbrConfig,
    builder: Option<Box<dyn sbr_core::BaseBuilder + Send>>,
) -> SbrStream {
    let n = files[0].len();
    let m = files[0][0].len();
    let mut encoder = match builder {
        Some(b) => SbrEncoder::with_builder(n, m, config, b),
        None => SbrEncoder::new(n, m, config),
    }
    .expect("harness config must be valid");
    let mut decoder = Decoder::new();
    let mut per_tx = Vec::with_capacity(files.len());
    for rows in files {
        let start = Instant::now();
        let tx = encoder.encode(rows).expect("encode");
        let encode_time = start.elapsed();
        let stats = encoder.last_stats().expect("stats after encode");
        let rec = decoder.decode(&tx).expect("decode");
        let (mut sse, mut rel) = (0.0, 0.0);
        for (orig, r) in rows.iter().zip(&rec) {
            sse += ErrorMetric::Sse.score(orig, r);
            rel += ErrorMetric::relative().score(orig, r);
        }
        per_tx.push(TxStats {
            sse,
            rel,
            cost: tx.cost(),
            inserted: stats.inserted,
            encode_time,
        });
    }
    SbrStream { per_tx }
}

/// Result of streaming a chunked dataset through a stateless baseline.
#[derive(Debug, Clone)]
pub struct BaselineStream {
    /// SSE per file.
    pub sse: Vec<f64>,
    /// Relative error per file.
    pub rel: Vec<f64>,
}

impl BaselineStream {
    /// Mean SSE per file.
    pub fn avg_sse(&self) -> f64 {
        self.sse.iter().sum::<f64>() / self.sse.len() as f64
    }

    /// Total relative error.
    pub fn total_rel(&self) -> f64 {
        self.rel.iter().sum()
    }
}

/// Compress every file independently with `method` under `budget_values`
/// per file and score the reconstructions.
pub fn run_baseline_stream(
    files: &[Vec<Vec<f64>>],
    method: &dyn Compressor,
    budget_values: usize,
) -> BaselineStream {
    let mut sse = Vec::with_capacity(files.len());
    let mut rel = Vec::with_capacity(files.len());
    for rows in files {
        let data = MultiSeries::from_rows(rows).expect("chunk shapes are uniform");
        let rec = method.compress_reconstruct(&data, budget_values);
        sse.push(ErrorMetric::Sse.score(data.flat(), &rec));
        rel.push(ErrorMetric::relative().score(data.flat(), &rec));
    }
    BaselineStream { sse, rel }
}

/// Render one formatted table row (used by every binary so outputs align).
pub fn row(label: &str, cells: &[String]) -> String {
    let mut s = format!("{label:<12}");
    for c in cells {
        s.push_str(&format!("{c:>14}"));
    }
    s
}

/// Format a float compactly for table cells.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.3}")
    } else {
        format!("{v:.5}")
    }
}

/// True when `--quick` was passed: shrink the experiment for fast
/// iteration (documented in each binary's header).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn files() -> Vec<Vec<Vec<f64>>> {
        (0..3)
            .map(|f| {
                (0..2)
                    .map(|s| {
                        (0..64)
                            .map(|i| ((i + f * 64) as f64 * 0.2 + s as f64).sin() * 3.0)
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn sbr_stream_scores_every_file() {
        let r = run_sbr_stream(&files(), SbrConfig::new(40, 32));
        assert_eq!(r.per_tx.len(), 3);
        assert!(r.avg_sse().is_finite());
        assert!(r.total_rel().is_finite());
        for t in &r.per_tx {
            assert!(t.cost <= 40);
        }
    }

    #[test]
    fn baseline_stream_scores_every_file() {
        let w = sbr_baselines::wavelet::WaveletCompressor::default();
        let r = run_baseline_stream(&files(), &w, 40);
        assert_eq!(r.sse.len(), 3);
        assert!(r.avg_sse() > 0.0);
    }

    #[test]
    fn fmt_is_stable() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.5), "1234");
        assert_eq!(fmt(12.3456), "12.346");
        assert_eq!(fmt(0.12345), "0.12345");
    }
}
