//! Benchmark harness: everything shared by the per-table/per-figure
//! binaries that regenerate the SIGMOD 2004 evaluation.
//!
//! Each binary prints the same rows/series the paper reports (see
//! `EXPERIMENTS.md` at the workspace root for the paper-vs-measured
//! record). Absolute numbers differ — the datasets are synthetic stand-ins
//! — but the comparisons (who wins, by what factor, where the optimum
//! falls) are the reproduction target.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod harness;
pub mod setups;

pub use harness::*;
pub use setups::*;
