//! The §4.4 deployment policy end to end: an [`AdaptiveEncoder`] streams a
//! weather feed whose regime shifts halfway through. Watch the expensive
//! dictionary-update path switch itself off once the dictionary converges
//! and back on when the quality monitor detects the shift. Also shows the
//! §3.2-footnote multi-rate support: the humidity sensor reports 4× slower
//! than the others and is aligned onto the common clock before encoding.
//!
//! ```sh
//! cargo run --release --example adaptive_station
//! ```

use sbr_repro::core::{AdaptiveEncoder, QualityMonitor, SbrConfig, SbrEncoder};
use sbr_repro::datasets::schedule::{align, Fill, ScheduledSignal};

fn main() {
    let file_len = 768;
    let batches = 10;
    let calm = sbr_repro::datasets::weather(5, file_len * batches);
    let stormy = sbr_repro::datasets::weather(99, file_len * batches);

    let n_signals = 3; // temperature, dew point + slow humidity
    let band = n_signals * file_len / 8;
    let encoder = SbrEncoder::new(n_signals, file_len, SbrConfig::new(band, 512))
        .expect("valid configuration");
    let mut adaptive = AdaptiveEncoder::new(encoder, QualityMonitor::new(4, 2.0), 2);

    println!("tx   updates   inserted        err    regime");
    for t in 0..batches {
        // Regime shift: after batch 5 the node is in a different climate
        // (different generator seed ⇒ different feature set, 3× amplitude).
        let (src, label, scale) = if t < 6 {
            (&calm, "calm", 1.0)
        } else {
            (&stormy, "storm", 3.0)
        };
        let s = t * file_len;
        let temperature = src.signals[0][s..s + file_len]
            .iter()
            .map(|v| v * scale)
            .collect();
        let dewpoint = src.signals[1][s..s + file_len]
            .iter()
            .map(|v| v * scale)
            .collect();
        // Humidity is sampled 4× slower and aligned onto the common clock.
        let humidity_slow: Vec<f64> = src.signals[5][s..s + file_len]
            .iter()
            .step_by(4)
            .copied()
            .collect();
        let (mut rows, m) = align(
            &[
                ScheduledSignal::new(temperature, 1),
                ScheduledSignal::new(dewpoint, 1),
                ScheduledSignal::new(humidity_slow, 4),
            ],
            Fill::Linear,
        );
        assert_eq!(m, file_len);
        let rows_owned: Vec<Vec<f64>> = std::mem::take(&mut rows);

        let was_on = adaptive.updates_on();
        let (_tx, stats) = adaptive.encode(&rows_owned).expect("encode");
        println!(
            "{t:>2}   {:>7}   {:>8}   {:>8.1}    {label}",
            if was_on { "on" } else { "off" },
            stats.inserted,
            stats.total_err,
        );
    }
}
