//! A weather station streaming ten buffers of six correlated quantities,
//! showing how the base signal converges: insertions concentrate in the
//! first transmissions, after which the dictionary is reused.
//!
//! ```sh
//! cargo run --release --example weather_station
//! ```

use sbr_repro::core::{Decoder, ErrorMetric, SbrConfig, SbrEncoder};

fn main() {
    let file_len = 1024;
    let dataset = sbr_repro::datasets::weather(7, file_len * 10);
    let files = dataset.chunk(file_len);
    let n = 6 * file_len;

    let config = SbrConfig::new(n / 10, 864); // 10% budget, small dictionary
    let mut encoder = SbrEncoder::new(6, file_len, config).expect("valid configuration");
    let mut decoder = Decoder::new();

    println!("tx   inserted   base-slots   sent/budget        sse");
    for (t, rows) in files.iter().enumerate() {
        let tx = encoder.encode(rows).expect("encode");
        let stats = encoder.last_stats().expect("stats");
        let rec = decoder.decode(&tx).expect("decode");
        let sse: f64 = rows
            .iter()
            .zip(&rec)
            .map(|(o, r)| ErrorMetric::Sse.score(o, r))
            .sum();
        println!(
            "{:>2}   {:>8}   {:>10}   {:>5}/{:<6}   {:>10.2}",
            t,
            stats.inserted,
            encoder.base().num_slots(),
            tx.cost(),
            n / 10,
            sse
        );
    }

    // A historical query: the base station can reconstruct any past chunk
    // because base-signal updates were logged along the way.
    println!(
        "\nbase signal converged to {} slots ({} values of sensor memory)",
        encoder.base().num_slots(),
        encoder.base().len()
    );
}
