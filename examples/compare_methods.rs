//! Compare every compression method in the workspace on one batch of the
//! mixed dataset at a 10 % budget — a miniature of the paper's Tables 2–4.
//!
//! ```sh
//! cargo run --release --example compare_methods
//! ```

use sbr_repro::baselines::dct::DctCompressor;
use sbr_repro::baselines::fourier::FourierCompressor;
use sbr_repro::baselines::histogram::HistogramCompressor;
use sbr_repro::baselines::linreg::LinRegCompressor;
use sbr_repro::baselines::quadreg::QuadRegCompressor;
use sbr_repro::baselines::swing::SwingCompressor;
use sbr_repro::baselines::v_optimal::VOptimalCompressor;
use sbr_repro::baselines::wavelet::WaveletCompressor;
use sbr_repro::baselines::wavelet2d::Wavelet2dCompressor;
use sbr_repro::baselines::{Allocation, Compressor};
use sbr_repro::core::{Decoder, ErrorMetric, MultiSeries, SbrConfig, SbrEncoder};

fn main() {
    let file_len = 1024;
    let dataset = sbr_repro::datasets::mixed(11, file_len);
    let rows = dataset.signals.clone();
    let n = rows.len() * file_len;
    let budget = n / 10;
    let data = MultiSeries::from_rows(&rows).expect("uniform rows");

    println!("method                 sse            relative-sse   (budget {budget} values)");

    // SBR, through the full encoder + decoder.
    let mut enc =
        SbrEncoder::new(rows.len(), file_len, SbrConfig::new(budget, 512)).expect("config");
    let tx = enc.encode(&rows).expect("encode");
    let rec = Decoder::new().decode(&tx).expect("decode");
    let flat: Vec<f64> = rec.into_iter().flatten().collect();
    print_row("SBR", data.flat(), &flat);

    let methods: Vec<Box<dyn Compressor>> = vec![
        Box::new(WaveletCompressor {
            allocation: Allocation::Concatenated,
        }),
        Box::new(DctCompressor {
            allocation: Allocation::Concatenated,
        }),
        Box::new(FourierCompressor {
            allocation: Allocation::PerSignal,
        }),
        Box::new(HistogramCompressor::default()),
        Box::new(VOptimalCompressor),
        Box::new(LinRegCompressor::default()),
        Box::new(QuadRegCompressor),
        Box::new(Wavelet2dCompressor),
        Box::new(SwingCompressor),
    ];
    for m in &methods {
        let approx = m.compress_reconstruct(&data, budget);
        print_row(m.name(), data.flat(), &approx);
    }
}

fn print_row(name: &str, exact: &[f64], approx: &[f64]) {
    println!(
        "{name:<20} {:>12.1} {:>16.2}",
        ErrorMetric::Sse.score(exact, approx),
        ErrorMetric::relative().score(exact, approx),
    );
}
