//! Quickstart: compress two correlated market indexes with SBR and
//! reconstruct them at the "base station".
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sbr_repro::core::{Decoder, ErrorMetric, SbrConfig, SbrEncoder};

fn main() {
    // The motivating pair from the paper's Figures 2–3: an Industrial and
    // an Insurance index that rise and fall together.
    let data = sbr_repro::datasets::indexes(42, 128);
    let rows = data.signals.clone();
    let n_values = 2 * 128;

    // Budget: 10% of the raw data, with a small on-sensor dictionary.
    let config = SbrConfig::new(n_values / 10, 64);
    let mut encoder = SbrEncoder::new(2, 128, config).expect("valid configuration");

    let tx = encoder.encode(&rows).expect("encode");
    println!("raw batch:      {n_values} values");
    println!(
        "transmitted:    {} values ({:.1}% of raw)",
        tx.cost(),
        100.0 * tx.compression_ratio()
    );
    println!(
        "  {} base intervals inserted, {} approximation intervals",
        tx.base_updates.len(),
        tx.intervals.len()
    );

    // The base station decodes the same stream.
    let mut decoder = Decoder::new();
    let reconstructed = decoder.decode(&tx).expect("decode");

    for (name, orig, rec) in [
        ("industrial", &rows[0], &reconstructed[0]),
        ("insurance ", &rows[1], &reconstructed[1]),
    ] {
        let sse = ErrorMetric::Sse.score(orig, rec);
        let worst = ErrorMetric::MaxAbs.score(orig, rec);
        let scale: f64 = orig.iter().map(|v| v.abs()).fold(0.0, f64::max);
        println!(
            "{name}: sse {sse:>12.1}   worst deviation {worst:>8.1} ({:.2}% of peak)",
            100.0 * worst / scale
        );
    }
}
