//! The "network measurements" scenario the paper's introduction points to:
//! a router exports per-link utilization, SBR archives it at 8% of the raw
//! volume, and an operator asks historical questions — answered straight
//! off the compressed log, no reconstruction pass.
//!
//! ```sh
//! cargo run --release --example netflow_monitor
//! ```

use sbr_repro::core::query::aggregate_stream;
use sbr_repro::core::{Decoder, ErrorMetric, SbrConfig, SbrEncoder};

fn main() {
    let n_links = 8;
    let batch = 864; // 3 synthetic days of 5-minute polls per batch
    let batches = 6;
    let data = sbr_repro::datasets::netflow(21, n_links, batch * batches);
    let files = data.chunk(batch);
    let n = n_links * batch;

    let config = SbrConfig::new(n / 12, 1024); // ~8.3% of raw
    let mut encoder = SbrEncoder::new(n_links, batch, config).expect("valid configuration");
    let mut txs = Vec::new();
    let mut raw = 0usize;
    let mut sent = 0usize;
    for rows in &files {
        let tx = encoder.encode(rows).expect("encode");
        raw += n;
        sent += tx.cost();
        txs.push(tx);
    }
    println!(
        "archived {} polls/link on {n_links} links: {raw} → {sent} values ({:.1}%)",
        batch * batches,
        100.0 * sent as f64 / raw as f64
    );

    // Operator questions, answered on the compressed records.
    let core1 = 0; // link index
    let day = batch / 3;
    println!(
        "\nlink {:?} — compressed-domain queries:",
        data.signal_names[core1]
    );
    for d in 0..3 {
        let mut dec = Decoder::new();
        let agg = aggregate_stream(&mut dec, &txs, core1, d * day, (d + 1) * day)
            .expect("aggregate query");
        println!(
            "  day {d}: avg {:>8.1} Mbit/s   peak {:>8.1}   floor {:>8.1}",
            agg.avg, agg.max, agg.min
        );
    }

    // Fidelity check against the truth for the same window.
    let mut dec = Decoder::new();
    let mut rec_all: Vec<f64> = Vec::new();
    for tx in &txs {
        rec_all.extend(dec.decode(tx).expect("decode")[core1].iter());
    }
    let truth = &data.signals[core1][..rec_all.len()];
    let sse = ErrorMetric::Sse.score(truth, &rec_all);
    let energy: f64 = truth.iter().map(|v| v * v).sum();
    println!(
        "\nreconstruction error on {}: {:.4}% of signal energy",
        data.signal_names[core1],
        100.0 * sse / energy
    );
}
