//! §4.5 in action: strict error bounds.
//!
//! 1. Encode under the max-abs metric and ship a *guaranteed* maximum
//!    error with the approximation.
//! 2. Give the encoder an error target with a space cap and let it stop
//!    spending bandwidth as soon as the target is met.
//!
//! ```sh
//! cargo run --release --example error_bounds
//! ```

use sbr_repro::core::bounds::audit_max_error;
use sbr_repro::core::{Decoder, ErrorBoundSpec, ErrorMetric, SbrConfig, SbrEncoder};

fn main() {
    let file_len = 512;
    let dataset = sbr_repro::datasets::weather(3, file_len);
    let rows: Vec<Vec<f64>> = dataset.signals[..4].to_vec();
    let n = 4 * file_len;

    // --- Guaranteed maximum error -------------------------------------
    let config = SbrConfig::new(n / 8, 256).with_metric(ErrorMetric::MaxAbs);
    let mut encoder = SbrEncoder::new(4, file_len, config).expect("valid configuration");
    let tx = encoder.encode(&rows).expect("encode");
    let bound = encoder.last_stats().expect("stats").total_err;
    let rec = Decoder::new().decode(&tx).expect("decode");
    let actual = audit_max_error(&rows, &rec);
    println!("minimax encoding: advertised bound {bound:.4}, audited worst deviation {actual:.4}");
    assert!(actual <= bound + 1e-9, "the bound is a guarantee");

    // --- Error target with a space cap ---------------------------------
    let mut encoder =
        SbrEncoder::new(4, file_len, SbrConfig::new(n / 4, 256)).expect("valid configuration");
    for target in [1e6, 1e4, 1e2] {
        let out = encoder
            .encode_bounded(
                &rows,
                ErrorBoundSpec {
                    target_band: n / 4,
                    error_target: target,
                },
            )
            .expect("bounded encode");
        println!(
            "sse target {target:>9.0}: sent {:>4} of {} allowed values, achieved {:>12.2}, met: {}",
            out.transmission.cost(),
            n / 4,
            out.achieved_error,
            out.met_target
        );
    }
}
