//! A 20-sensor multi-hop network comparing three dissemination strategies
//! — raw forwarding, per-window aggregation, and SBR — on energy and
//! reconstruction fidelity, then answering a historical range query from
//! the base station's logs.
//!
//! ```sh
//! cargo run --release --example network_sim
//! ```

use sbr_repro::core::SbrConfig;
use sbr_repro::sensor_net::{Battery, EnergyModel, Network, Strategy, Topology};

fn main() {
    let n_nodes = 21; // base + 20 sensors
    let n_signals = 3;
    let file_len = 512;
    let batches = 4;

    // Every sensor measures its own (correlated) local weather.
    let feeds: Vec<Vec<Vec<f64>>> = (0..n_nodes - 1)
        .map(|i| {
            let d = sbr_repro::datasets::weather(100 + i as u64, file_len * batches);
            d.signals[..n_signals].to_vec()
        })
        .collect();

    let strategies = [
        Strategy::Raw,
        Strategy::Aggregate { window: 32 },
        Strategy::Sbr(SbrConfig::new(n_signals * file_len / 10, 256)),
    ];

    // Network lifetime: batteries sized so the raw strategy lives ~100
    // collection periods; the comparison is what matters.
    let battery = Battery { capacity: 2e12 };
    println!(
        "strategy     values-sent   reduction     total-energy          sse   lifetime(periods)"
    );
    let mut sbr_net = None;
    for s in &strategies {
        let topology = Topology::random(n_nodes, 10.0, 2.5, 9);
        let mut net = Network::new(topology, EnergyModel::default());
        let report = net.simulate(&feeds, file_len, s).expect("simulation");
        println!(
            "{:<12} {:>11}   {:>8.1}%   {:>13.3e}   {:>10.2}   {:>14.1}",
            report.strategy,
            report.values_sent,
            100.0 * report.compression_ratio(),
            report.total_energy(),
            report.sse,
            battery.network_lifetime(&report.ledgers)
        );
        if matches!(s, Strategy::Sbr(_)) {
            sbr_net = Some(net);
        }
    }

    // Historical query against the SBR run's logs: sensor 5, signal 0
    // (temperature), samples 300..360 — spanning a chunk boundary.
    let net = sbr_net.expect("sbr strategy ran");
    let window = net
        .station()
        .reconstruct_signal_range(5, 0, 300, 360)
        .expect("historical query");
    let truth = &feeds[4][0][300..360];
    let sse: f64 = truth
        .iter()
        .zip(&window)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    println!("\nhistorical query (sensor 5, temperature, t ∈ [300, 360)):");
    println!("  60 samples reconstructed from the log, sse {sse:.3}");
    println!(
        "  first five: {:?}",
        &window[..5]
            .iter()
            .map(|v| (v * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
}
