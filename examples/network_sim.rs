//! A 20-sensor multi-hop network comparing three dissemination strategies
//! — raw forwarding, per-window aggregation, and SBR — on energy and
//! reconstruction fidelity, then answering a historical range query from
//! the base station's logs.
//!
//! ```sh
//! cargo run --release --example network_sim
//! ```

use std::sync::Arc;

use sbr_repro::core::SbrConfig;
use sbr_repro::obs::{MetricsRecorder, Recorder as _};
use sbr_repro::sensor_net::{Battery, EnergyModel, Network, Strategy, Topology};

fn main() {
    let n_nodes = 21; // base + 20 sensors
    let n_signals = 3;
    let file_len = 512;
    let batches = 4;

    // Every sensor measures its own (correlated) local weather.
    let feeds: Vec<Vec<Vec<f64>>> = (0..n_nodes - 1)
        .map(|i| {
            let d = sbr_repro::datasets::weather(100 + i as u64, file_len * batches);
            d.signals[..n_signals].to_vec()
        })
        .collect();

    let strategies = [
        Strategy::Raw,
        Strategy::Aggregate { window: 32 },
        Strategy::Sbr(SbrConfig::new(n_signals * file_len / 10, 256)),
    ];

    // Network lifetime: batteries sized so the raw strategy lives ~100
    // collection periods; the comparison is what matters.
    let battery = Battery { capacity: 2e12 };
    println!(
        "strategy     values-sent   reduction     total-energy          sse   lifetime(periods)"
    );
    let mut sbr_net = None;
    let mut sbr_metrics = None;
    for s in &strategies {
        let topology = Topology::random(n_nodes, 10.0, 2.5, 9);
        let mut net = Network::new(topology, EnergyModel::default());
        // Instrument the SBR run so we can show where the energy and the
        // encode time actually went.
        let rec = if matches!(s, Strategy::Sbr(_)) {
            let rec = Arc::new(MetricsRecorder::new());
            net.set_recorder(rec.clone());
            Some(rec)
        } else {
            None
        };
        let report = net.simulate(&feeds, file_len, s).expect("simulation");
        if let Some(rec) = rec {
            sbr_metrics = Some(rec.snapshot());
        }
        println!(
            "{:<12} {:>11}   {:>8.1}%   {:>13.3e}   {:>10.2}   {:>14.1}",
            report.strategy,
            report.values_sent,
            100.0 * report.compression_ratio(),
            report.total_energy(),
            report.sse,
            battery.network_lifetime(&report.ledgers)
        );
        if matches!(s, Strategy::Sbr(_)) {
            sbr_net = Some(net);
        }
    }

    // Headline observability numbers from the instrumented SBR run.
    let snap = sbr_metrics.expect("sbr run was instrumented");
    println!("\nsbr run metrics (via sbr-obs recorder):");
    if let Some(h) = snap.histogram("sbr_core.sbr.encode_ns") {
        println!(
            "  encode: {} transmissions, {:.2} ms total, {:.3} ms mean",
            h.count,
            h.sum as f64 / 1e6,
            h.sum as f64 / h.count.max(1) as f64 / 1e6
        );
    }
    println!(
        "  best_map: {} calls ({} direct sweeps, {} fft sweeps)",
        snap.counter("sbr_core.best_map.calls").unwrap_or(0),
        snap.counter("sbr_core.best_map.direct_sweeps").unwrap_or(0),
        snap.counter("sbr_core.best_map.fft_sweeps").unwrap_or(0)
    );
    println!(
        "  base signal: {} chunks inserted, {} evicted",
        snap.counter("sbr_core.base_signal.inserted").unwrap_or(0),
        snap.counter("sbr_core.base_signal.evicted").unwrap_or(0)
    );
    println!(
        "  radio: {} hop attempts, {} drops; energy tx {:.2e}, rx {:.2e}, overhear {:.2e}",
        snap.counter("sensor_net.link.hop_attempts").unwrap_or(0),
        snap.counter("sensor_net.link.drops").unwrap_or(0),
        snap.gauge("sensor_net.energy.tx").unwrap_or(0.0),
        snap.gauge("sensor_net.energy.rx").unwrap_or(0.0),
        snap.gauge("sensor_net.energy.overhear").unwrap_or(0.0)
    );

    // Historical query against the SBR run's logs: sensor 5, signal 0
    // (temperature), samples 300..360 — spanning a chunk boundary.
    let net = sbr_net.expect("sbr strategy ran");
    let window = net
        .station()
        .reconstruct_signal_range(5, 0, 300, 360)
        .expect("historical query");
    let truth = &feeds[4][0][300..360];
    let sse: f64 = truth
        .iter()
        .zip(&window)
        .map(|(a, b)| (a - b) * (a - b))
        .sum();
    println!("\nhistorical query (sensor 5, temperature, t ∈ [300, 360)):");
    println!("  60 samples reconstructed from the log, sse {sse:.3}");
    println!(
        "  first five: {:?}",
        &window[..5]
            .iter()
            .map(|v| (v * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
}
