//! Offline stand-in for [`criterion`](https://docs.rs/criterion).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a small wall-clock benchmarking harness exposing the criterion
//! API subset our benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::bench_function`],
//! [`BenchmarkId`], [`criterion_group!`] / [`criterion_main!`] and
//! [`black_box`].
//!
//! Methodology: each benchmark is auto-calibrated to a per-sample iteration
//! count targeting ~`measurement_time / sample_size` of wall clock, then
//! `sample_size` samples are taken and the median per-iteration time is
//! reported. No statistics beyond min/median/max, no HTML reports — the
//! numbers print to stdout in a stable, greppable one-line-per-benchmark
//! format (also consumed by `scripts/ci.sh`).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier of one benchmark within a group: `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_target: usize,
}

impl Bencher {
    /// Time `routine`, first calibrating an iteration count and then taking
    /// the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: grow the per-sample iteration count until one sample
        // costs at least ~1 ms (or a single iteration already does).
        let mut iters = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters = iters.saturating_mul(2);
        }
        for _ in 0..self.sample_target {
            let t = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(t.elapsed());
        }
    }

    fn per_iter_stats(&self) -> (Duration, Duration, Duration) {
        let mut per: Vec<Duration> = self
            .samples
            .iter()
            .map(|s| *s / self.iters_per_sample.max(1) as u32)
            .collect();
        per.sort();
        let median = per[per.len() / 2];
        (per[0], median, *per.last().unwrap())
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Number of samples per benchmark (criterion default is 100; the stub
    /// defaults lower to keep `cargo bench` wall time reasonable).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Ignored (API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark that receives `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_target: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Run one benchmark without an input parameter.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_target: self.sample_size,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        if b.samples.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let (min, median, max) = b.per_iter_stats();
        println!(
            "{}/{id}  time: [{} {} {}]",
            self.name,
            fmt_duration(min),
            fmt_duration(median),
            fmt_duration(max),
        );
    }

    /// Finish the group (prints nothing; criterion API compatibility).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("-- group {name} --");
        BenchmarkGroup {
            name,
            sample_size: 20,
            _parent: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declare a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        let mut count = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
                black_box(count)
            })
        });
        g.finish();
        assert!(count > 0);
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter(99).to_string(), "99");
    }
}
