//! Offline stand-in for [`serde`](https://docs.rs/serde).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors marker-level `Serialize` / `Deserialize` traits and a derive that
//! emits empty impls. This keeps `#[cfg_attr(feature = "serde", derive(...))]`
//! annotations compiling (and the feature wiring honest) without pulling in
//! the real serializer framework. Code that needs actual serialization uses
//! the hand-rolled wire codec in `sbr-core::codec` instead.

/// Marker for types whose values can be serialized.
///
/// The stand-in carries no serializer plumbing; the derive emits an empty
/// impl of this trait.
pub trait Serialize {}

/// Marker for types whose values can be deserialized.
pub trait Deserialize<'de>: Sized {}

/// Owned-deserialization alias, mirroring serde's blanket relationship.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

macro_rules! impl_primitives {
    ($($ty:ty),* $(,)?) => {
        $(
            impl Serialize for $ty {}
            impl<'de> Deserialize<'de> for $ty {}
        )*
    };
}

impl_primitives!(
    bool, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64, char, String
);

impl Serialize for str {}
impl<T: Serialize> Serialize for Vec<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize> Serialize for [T] {}
impl<T: Serialize, const N: usize> Serialize for [T; N] {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {}
