//! Offline stand-in for [`parking_lot`](https://docs.rs/parking_lot).
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API:
//! `lock()` / `read()` / `write()` return guards directly. A poisoned std
//! lock (a panic while held) propagates the inner value anyway, matching
//! parking_lot's "no poisoning" contract.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with `parking_lot`'s panic-free `lock()`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

/// Reader-writer lock with `parking_lot`'s panic-free accessors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_counts_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2, 3]);
        assert_eq!(l.read().len(), 3);
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }
}
