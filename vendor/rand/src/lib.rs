//! Offline stand-in for the [`rand`](https://docs.rs/rand) crate (0.9 API).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal subset: the [`Rng`] / [`SeedableRng`] traits and a
//! deterministic [`rngs::StdRng`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — *not* the upstream ChaCha12, so value streams differ from
//! real `rand`, but every dataset in this repo only relies on seeds being
//! deterministic and the output being well distributed.

/// Types that can be sampled uniformly from an [`Rng`]'s raw 64-bit output.
pub trait Standard: Sized {
    /// Draw one value from `bits`.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn from_bits(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn from_bits(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> bool {
        bits >> 63 == 1
    }
}

/// Random number generator interface (subset of `rand 0.9`).
pub trait Rng {
    /// Next raw 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of `T` from its standard distribution (floats are
    /// uniform in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Uniform integer in `[0, bound)` via rejection-free multiply-shift.
    fn random_range_u64(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

/// RNGs constructible from a small seed (subset of `rand 0.9`).
pub trait SeedableRng: Sized {
    /// Derive the full generator state from one `u64`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for the upstream
    /// `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f64_uniform_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.random();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn bool_probability_tracks_p() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits} hits for p=0.25");
    }
}
