//! Offline stand-in for [`proptest`](https://docs.rs/proptest).
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal property-testing harness with a compatible API subset:
//! the [`proptest!`] macro, range / tuple / `prop::collection::vec` /
//! [`any`] strategies, `prop_assert*` / `prop_assume!`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **No shrinking** — a failing case reports its case index and message
//!   but is not minimized.
//! * **Deterministic seeding** — each test derives its RNG seed from the
//!   test's module path and name, so runs are reproducible without a
//!   persistence file (`.proptest-regressions` files are ignored).

/// Test-runner plumbing used by the [`proptest!`] expansion.
pub mod test_runner {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    pub use rand::rngs::StdRng as TestRngInner;
    use rand::{Rng, SeedableRng};

    /// Per-case deterministic RNG.
    pub struct TestRng(TestRngInner);

    impl TestRng {
        /// RNG for case number `case` of the test seeded by `base`.
        pub fn new(base: u64, case: u64) -> Self {
            TestRng(TestRngInner::seed_from_u64(
                base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ))
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            self.0.random::<f64>()
        }

        /// Uniform integer in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.0.random_range_u64(bound.max(1))
        }
    }

    /// Stable seed derived from a test's fully-qualified name.
    pub fn seed_for(name: &str) -> u64 {
        let mut h = DefaultHasher::new();
        name.hash(&mut h);
        h.finish()
    }

    /// A failed or rejected test case.
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure carrying `msg`.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Generates values of `Value` from an RNG.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> f32 {
            self.start + rng.unit_f64() as f32 * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {
            $(
                impl Strategy for Range<$ty> {
                    type Value = $ty;
                    fn sample(&self, rng: &mut TestRng) -> $ty {
                        let span = (self.end as i128 - self.start as i128).max(1) as u64;
                        (self.start as i128 + rng.below(span) as i128) as $ty
                    }
                }
            )*
        };
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy yielding a fixed value (proptest's `Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+)),* $(,)?) => {
            $(
                impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                    type Value = ($($s::Value,)+);
                    fn sample(&self, rng: &mut TestRng) -> Self::Value {
                        ($(self.$idx.sample(rng),)+)
                    }
                }
            )*
        };
    }
    tuple_strategy!(
        (A.0),
        (A.0, B.1),
        (A.0, B.1, C.2),
        (A.0, B.1, C.2, D.3),
        (A.0, B.1, C.2, D.3, E.4),
        (A.0, B.1, C.2, D.3, E.4, F.5),
    );

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($ty:ty),*) => {
            $(
                impl Arbitrary for $ty {
                    fn arbitrary(rng: &mut TestRng) -> $ty {
                        rng.next_u64() as $ty
                    }
                }
            )*
        };
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite, wide-range values; property tests over raw bit
            // patterns are not needed in this workspace.
            (rng.unit_f64() - 0.5) * 2e12
        }
    }

    /// Strategy form of [`Arbitrary`]; built by [`crate::any`].
    pub struct AnyStrategy<T>(pub(crate) std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// The canonical strategy for any supported type.
pub fn any<T: strategy::Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy(std::marker::PhantomData)
}

/// Combinator namespace, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// Length specification for [`vec`]: an exact `usize` or a
        /// `Range<usize>`.
        pub trait SizeRange {
            /// Draw a length.
            fn pick(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn pick(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for Range<usize> {
            fn pick(&self, rng: &mut TestRng) -> usize {
                self.start + rng.below((self.end - self.start).max(1) as u64) as usize
            }
        }

        /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.pick(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Vectors of `element` values with length in `size`.
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }
    }
}

/// Everything a property test needs in scope.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Assert a condition inside a property test; failures report the case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a != *b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Skip the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($rest:tt)*)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, ...)` body runs for
/// `cases` deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = $crate::test_runner::Config::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $cfg;
                let base = $crate::test_runner::seed_for(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::new(base, case as u64);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {}: case {}/{} failed: {e}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            x in -5.0f64..5.0,
            n in 1usize..10,
            u in 0u64..1000,
        ) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
            prop_assert!(u < 1000);
        }

        #[test]
        fn vec_lengths_respect_size(
            v in prop::collection::vec(0i64..100, 3..7),
            exact in prop::collection::vec(any::<u8>(), 4usize),
        ) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert_eq!(exact.len(), 4);
        }

        #[test]
        fn tuples_sample_elementwise(
            t in (0u64..10, -1i64..1, 0.0f64..1.0),
        ) {
            prop_assert!(t.0 < 10);
            prop_assert!((-1..1).contains(&t.1));
            prop_assert!((0.0..1.0).contains(&t.2));
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn determinism_across_runs() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::prop::collection::vec(0u32..1000, 5..9);
        let a = s.sample(&mut TestRng::new(7, 3));
        let b = s.sample(&mut TestRng::new(7, 3));
        assert_eq!(a, b);
    }
}
