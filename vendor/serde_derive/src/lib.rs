//! Derive macros for the vendored `serde` stand-in.
//!
//! The traits are markers, so the derive only needs the type's name and
//! generics-free shape: it scans the token stream for `struct`/`enum`, takes
//! the following identifier, and emits an empty trait impl. Generic types
//! are not supported (none of the workspace's serialized types are generic).

use proc_macro::{TokenStream, TokenTree};

/// Find the identifier following the `struct` or `enum` keyword.
fn type_name(input: &TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input.clone() {
        if let TokenTree::Ident(id) = tt {
            let s = id.to_string();
            if saw_kw {
                return Some(s);
            }
            if s == "struct" || s == "enum" || s == "union" {
                saw_kw = true;
            }
        }
    }
    None
}

/// Derive the marker `Serialize` impl.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input).expect("derive(Serialize): no type name found");
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .unwrap()
}

/// Derive the marker `Deserialize` impl.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input).expect("derive(Deserialize): no type name found");
    format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
        .parse()
        .unwrap()
}
