//! Offline stand-in for the [`bytes`](https://docs.rs/bytes) crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, API-compatible subset of `bytes`: the [`Buf`] /
//! [`BufMut`] cursor traits and the [`Bytes`] / [`BytesMut`] buffer types,
//! covering exactly the little-endian accessors the SBR wire codec uses.
//! Semantics (panics on under/overflow, `freeze`, cheap clones) match the
//! upstream crate for the covered subset.

use std::ops::Deref;
use std::sync::Arc;

macro_rules! buf_get_le {
    ($($name:ident -> $ty:ty),* $(,)?) => {
        $(
            /// Read one little-endian value and advance.
            fn $name(&mut self) -> $ty {
                let mut raw = [0u8; std::mem::size_of::<$ty>()];
                self.copy_to_slice(&mut raw);
                <$ty>::from_le_bytes(raw)
            }
        )*
    };
}

macro_rules! buf_put_le {
    ($($name:ident($ty:ty)),* $(,)?) => {
        $(
            /// Append one value in little-endian byte order.
            fn $name(&mut self, v: $ty) {
                self.put_slice(&v.to_le_bytes());
            }
        )*
    };
}

/// Read cursor over a contiguous byte buffer.
pub trait Buf {
    /// Bytes left to consume.
    fn remaining(&self) -> usize;
    /// The unread bytes.
    fn chunk(&self) -> &[u8];
    /// Skip `cnt` bytes. Panics when `cnt > remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Copy `dst.len()` bytes out and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// True when nothing remains.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    buf_get_le! {
        get_u16_le -> u16,
        get_u32_le -> u32,
        get_u64_le -> u64,
        get_i32_le -> i32,
        get_i64_le -> i64,
        get_f32_le -> f32,
        get_f64_le -> f64,
    }

    /// Read one byte and advance.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }
}

/// Write cursor that appends to a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    buf_put_le! {
        put_u16_le(u16),
        put_u32_le(u32),
        put_u64_le(u64),
        put_i32_le(i32),
        put_i64_le(i64),
        put_f32_le(f32),
        put_f64_le(f64),
    }

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Cheaply clonable immutable byte buffer (shared storage + cursor).
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
    /// Consumed prefix; `Buf` reads advance this cursor.
    pos: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.into(),
            pos: 0,
        }
    }

    /// Unconsumed length.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    /// True when fully consumed or empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy the unconsumed bytes into a `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.chunk().to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            data: v.into(),
            pos: 0,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes::copy_from_slice(v)
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.chunk()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.chunk()
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.chunk() == other.chunk()
    }
}
impl Eq for Bytes {}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        self.pos += cnt;
    }
}

/// Growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// An empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Append raw bytes.
    pub fn extend_from_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut w = BytesMut::with_capacity(64);
        w.put_u8(7);
        w.put_u16_le(513);
        w.put_u32_le(70_000);
        w.put_u64_le(1 << 40);
        w.put_i32_le(-5);
        w.put_i64_le(-(1 << 35));
        w.put_f32_le(1.5);
        w.put_f64_le(-2.25);
        let mut b = w.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u16_le(), 513);
        assert_eq!(b.get_u32_le(), 70_000);
        assert_eq!(b.get_u64_le(), 1 << 40);
        assert_eq!(b.get_i32_le(), -5);
        assert_eq!(b.get_i64_le(), -(1 << 35));
        assert_eq!(b.get_f32_le(), 1.5);
        assert_eq!(b.get_f64_le(), -2.25);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_buf_advances() {
        let raw = [1u8, 2, 3, 4];
        let mut s = &raw[..];
        assert_eq!(s.get_u16_le(), 513);
        assert_eq!(s.remaining(), 2);
        s.advance(2);
        assert!(!s.has_remaining());
    }

    #[test]
    fn bytes_clone_is_independent_cursor() {
        let b = Bytes::from(vec![9u8, 8, 7]);
        let mut c = b.clone();
        c.advance(2);
        assert_eq!(b.len(), 3);
        assert_eq!(c.len(), 1);
        assert_eq!(c.chunk(), &[7]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut b = Bytes::from(vec![1u8]);
        b.get_u32_le();
    }
}
